/**
 * @file
 * Parameterized robustness sweeps: the QoS properties must hold for
 * any RNG seed and across frame/quantum configurations, not just the
 * defaults the benches use.
 */

#include <gtest/gtest.h>

#include <ios>
#include <sstream>

#include "harness/experiment.hh"
#include "qos/allocation.hh"

namespace noc
{
namespace
{

RunConfig
miniLoft(std::uint64_t seed)
{
    RunConfig c;
    c.kind = NetKind::Loft;
    c.meshWidth = 4;
    c.meshHeight = 4;
    c.warmupCycles = 1500;
    c.measureCycles = 4000;
    c.seed = seed;
    c.loft.frameSizeFlits = 64;
    c.loft.centralBufferFlits = 64;
    c.loft.specBufferFlits = 8;
    c.loft.maxFlows = 16;
    c.loft.sourceQueueFlits = 32;
    return c;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, HotspotFairnessHoldsForAnySeed)
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = hotspotPattern(mesh, 15);
    setEqualSharesByMaxFlows(p.flows, 16);
    const RunResult r =
        runExperiment(miniLoft(GetParam()), p, 0.5);
    const FairnessSummary s = summarizeFairness(r.flowThroughput);
    EXPECT_NEAR(s.avg, 1.0 / 16, 0.01) << "seed " << GetParam();
    EXPECT_LT(s.rsd, 0.08) << "seed " << GetParam();
    EXPECT_EQ(r.anomalyViolations, 0u);
}

TEST_P(SeedSweep, UniformDeliversOfferedLoadBelowSaturation)
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    const RunResult r =
        runExperiment(miniLoft(GetParam()), p, 0.08);
    EXPECT_NEAR(r.networkThroughput, 0.08, 0.02)
        << "seed " << GetParam();
    EXPECT_EQ(r.anomalyViolations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u,
                                           0xdeadbeefu));

struct FrameCase
{
    std::uint32_t frameFlits;
    std::uint32_t windowFrames;
    std::uint32_t quantumFlits;
};

class FrameSweep : public ::testing::TestWithParam<FrameCase>
{
};

TEST_P(FrameSweep, IsolationHoldsAcrossFrameGeometries)
{
    const FrameCase fc = GetParam();
    RunConfig c = miniLoft(3);
    c.loft.frameSizeFlits = fc.frameFlits;
    c.loft.centralBufferFlits = fc.frameFlits;
    c.loft.windowFrames = fc.windowFrames;
    c.loft.quantumFlits = fc.quantumFlits;

    Mesh2D mesh(4, 4);
    TrafficPattern p = pathologicalPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    const RunResult r = runExperiment(c, p, 0.8);
    double stripped = 0.0;
    for (std::size_t i = 0; i < p.flows.size(); ++i) {
        if (p.groups[i] == 1)
            stripped = r.flowThroughput[i];
    }
    // The uncontended flow keeps the bulk of its offered rate under
    // every geometry; exact value varies with slot granularity.
    EXPECT_GT(stripped, 0.5)
        << "F=" << fc.frameFlits << " WF=" << fc.windowFrames
        << " Q=" << fc.quantumFlits;
    EXPECT_EQ(r.anomalyViolations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FrameSweep,
    ::testing::Values(FrameCase{64, 2, 2}, FrameCase{64, 4, 2},
                      FrameCase{128, 2, 2}, FrameCase{64, 2, 1},
                      FrameCase{128, 2, 4}));

/// ---------------------------------------------------------------
/// Determinism: the simulator must be a pure function of its seed.
/// ---------------------------------------------------------------

/** Serialize every metric of a run, bit-exact (hexfloat). */
std::string
fingerprint(const RunResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << r.avgPacketLatency << " " << r.maxPacketLatency << " "
       << r.p50PacketLatency << " " << r.p95PacketLatency << " "
       << r.p99PacketLatency << " " << r.networkThroughput << " "
       << r.totalFlits << " " << r.totalPackets << " "
       << r.localResets << " " << r.speculativeForwards << " "
       << r.emergentForwards << " " << r.missedSlots << "\n";
    for (double v : r.flowThroughput)
        os << v << " ";
    for (double v : r.flowAvgLatency)
        os << v << " ";
    for (double v : r.flowMaxLatency)
        os << v << " ";
    for (double v : r.linkUtilization)
        os << v << " ";
    return os.str();
}

RunResult
determinismRun(std::uint64_t seed)
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    return runExperiment(miniLoft(seed), p, 0.2);
}

TEST(Determinism, SameSeedReproducesBitIdenticalMetrics)
{
    const std::string a = fingerprint(determinismRun(42));
    const std::string b = fingerprint(determinismRun(42));
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsProduceDifferentRuns)
{
    const std::string a = fingerprint(determinismRun(1));
    const std::string b = fingerprint(determinismRun(2));
    EXPECT_NE(a, b);
}

RunResult
telemetryDeterminismRun(std::uint64_t seed)
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    RunConfig c = miniLoft(seed);
    c.telemetry.enabled = true;
    c.telemetry.epochCycles = 500;
    return runExperiment(c, p, 0.2);
}

TEST(Determinism, TelemetryExportsAreByteIdenticalForSameSeed)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";

    const RunResult a = telemetryDeterminismRun(42);
    const RunResult b = telemetryDeterminismRun(42);
    ASSERT_NE(a.telemetry, nullptr);
    ASSERT_NE(b.telemetry, nullptr);
    EXPECT_EQ(a.telemetry->timeSeriesCsv(), b.telemetry->timeSeriesCsv());
    EXPECT_EQ(a.telemetry->chromeTraceJson(),
              b.telemetry->chromeTraceJson());
    EXPECT_EQ(a.telemetry->heatmapCsv(), b.telemetry->heatmapCsv());
}

TEST(Determinism, InertFaultPlanDoesNotPerturbTheRun)
{
    // An inactive FaultPlan must leave the run bit-identical to one
    // where the fault subsystem does not exist at all: no injector is
    // built, channels stay plain, and every metric matches.
    const std::string bare = fingerprint(determinismRun(42));

    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);

    RunConfig enabled_no_rates = miniLoft(42);
    enabled_no_rates.faults.enabled = true; // all rates zero
    EXPECT_EQ(bare,
              fingerprint(runExperiment(enabled_no_rates, p, 0.2)));

    RunConfig rates_no_enable = miniLoft(42);
    rates_no_enable.faults.linkStallRate = 1e-3; // master switch off
    EXPECT_EQ(bare,
              fingerprint(runExperiment(rates_no_enable, p, 0.2)));
}

TEST(Determinism, TelemetryObservationDoesNotPerturbTheRun)
{
    // The fingerprint of an instrumented run matches the bare run's:
    // attaching the collector must not change a single metric.
    const std::string bare = fingerprint(determinismRun(42));
    const std::string instrumented =
        fingerprint(telemetryDeterminismRun(42));
    EXPECT_EQ(bare, instrumented);
}

RunResult
tracedDeterminismRun(std::uint64_t seed, unsigned workers)
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    RunConfig c = miniLoft(seed);
    c.trace.enabled = true;
    c.trace.sampleRate = 1.0;
    c.intraRunWorkers = workers;
    return runExperiment(c, p, 0.2);
}

TEST(Determinism, TracingObservationDoesNotPerturbTheRun)
{
    // Tracing is passive: with the collector attached, every metric —
    // and therefore the sweep fingerprint — is bit-identical to the
    // untraced run. Also holds trivially with -DLOFT_AUDIT=OFF, where
    // the collector is never constructed.
    const std::string bare = fingerprint(determinismRun(42));
    const std::string traced =
        fingerprint(tracedDeterminismRun(42, 1));
    EXPECT_EQ(bare, traced);
}

TEST(Determinism, TraceDumpsAreByteIdenticalAcrossWorkerCounts)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";

    // The collector sits downstream of the DeferredObserver merge, so
    // a spatially partitioned run feeds it the exact serial event
    // order: dumps and span exports match a serial run byte for byte.
    const RunResult serial = tracedDeterminismRun(42, 1);
    const RunResult partitioned = tracedDeterminismRun(42, 4);
    ASSERT_NE(serial.trace, nullptr);
    ASSERT_NE(partitioned.trace, nullptr);
    EXPECT_EQ(serial.trace->dumpJson("test", 5500),
              partitioned.trace->dumpJson("test", 5500));
    EXPECT_EQ(chromeTraceJson(serial.trace->spanWriter(), 4, 4),
              chromeTraceJson(partitioned.trace->spanWriter(), 4, 4));
    EXPECT_EQ(fingerprint(serial), fingerprint(partitioned));
}

} // namespace
} // namespace noc
