/**
 * @file
 * Unit tests for the QoS utilities: reservation allocation, delay
 * bounds (Section 5.3.1), the hardware cost model (Table 2), and the
 * per-group fairness summaries.
 */

#include <gtest/gtest.h>

#include "qos/allocation.hh"
#include "qos/delay_bound.hh"
#include "qos/group_metrics.hh"
#include "qos/hw_cost.hh"

namespace noc
{
namespace
{

TEST(Allocation, HotspotContentionIsAtEjection)
{
    Mesh2D m(8, 8);
    auto p = hotspotPattern(m, 63);
    EXPECT_EQ(maxLinkContention(p.flows, m), 63u);
}

TEST(Allocation, UniformContentionIsAllFlows)
{
    Mesh2D m(8, 8);
    auto p = uniformPattern(m);
    EXPECT_EQ(maxLinkContention(p.flows, m), 64u);
}

TEST(Allocation, EqualSharesValidate)
{
    Mesh2D m(8, 8);
    auto p = hotspotPattern(m, 63);
    setEqualSharesByMaxFlows(p.flows, 64);
    for (const auto &f : p.flows)
        EXPECT_DOUBLE_EQ(f.bwShare, 1.0 / 64);
    EXPECT_TRUE(validateShares(p.flows, m));
}

TEST(Allocation, OversubscriptionDetected)
{
    Mesh2D m(8, 8);
    auto p = hotspotPattern(m, 63);
    setEqualShares(p.flows, 0.05); // 63 flows x 0.05 > 1 at ejection
    EXPECT_FALSE(validateShares(p.flows, m));
}

TEST(Allocation, WeightedSharesProportionalToWeights)
{
    Mesh2D m(8, 8);
    auto p = hotspotPattern(m, 63);
    const auto quad = quadrantPartition(m);
    p.groups.clear();
    for (const auto &f : p.flows)
        p.groups.push_back(quad[f.src]);
    setGroupWeightedShares(p, m, {5.0, 4.0, 4.0, 2.0});
    EXPECT_TRUE(validateShares(p.flows, m));
    // Any two flows' shares relate as their group weights.
    double w[4] = {5, 4, 4, 2};
    for (std::size_t i = 0; i < p.flows.size(); ++i) {
        for (std::size_t j = 0; j < p.flows.size(); ++j) {
            EXPECT_NEAR(p.flows[i].bwShare * w[p.groups[j]],
                        p.flows[j].bwShare * w[p.groups[i]], 1e-12);
        }
    }
}

TEST(Allocation, WeightedSharesSaturateBottleneck)
{
    Mesh2D m(8, 8);
    auto p = hotspotPattern(m, 63);
    const auto quad = quadrantPartition(m);
    p.groups.clear();
    for (const auto &f : p.flows)
        p.groups.push_back(quad[f.src]);
    setGroupWeightedShares(p, m, {1.0, 1.0, 1.0, 1.0});
    double total = 0.0;
    for (const auto &f : p.flows)
        total += f.bwShare;
    EXPECT_NEAR(total, 1.0, 1e-9); // ejection link fully reserved
}

TEST(Allocation, QuadrantPartitionShape)
{
    Mesh2D m(8, 8);
    const auto q = quadrantPartition(m);
    EXPECT_EQ(q[0], 0u);   // SW
    EXPECT_EQ(q[7], 1u);   // SE
    EXPECT_EQ(q[56], 2u);  // NW
    EXPECT_EQ(q[63], 3u);  // NE
    std::vector<int> count(4, 0);
    for (auto g : q)
        ++count[g];
    for (int c : count)
        EXPECT_EQ(c, 16);
}

TEST(Allocation, DiagonalPartitionShape)
{
    Mesh2D m(8, 8);
    const auto d = diagonalPartition(m);
    EXPECT_EQ(d[0], 0u);  // SW
    EXPECT_EQ(d[63], 0u); // NE
    EXPECT_EQ(d[7], 1u);  // SE
    EXPECT_EQ(d[56], 1u); // NW
    std::vector<int> count(2, 0);
    for (auto g : d)
        ++count[g];
    EXPECT_EQ(count[0], 32);
    EXPECT_EQ(count[1], 32);
}

TEST(DelayBound, LoftMatchesPaperNumbers)
{
    LoftParams p; // Table 1 defaults: F=256, WF=2
    EXPECT_EQ(loftWorstCaseLatency(p, 1), 512u); // 512 cycles per hop
    EXPECT_EQ(loftWorstCaseLatency(p, 15), 7680u);
}

TEST(DelayBound, GsfMatchesPaperNumbers)
{
    GsfParams p; // frame 2000, window 6
    EXPECT_EQ(gsfWorstCaseLatency(p, 2), 24000u);
}

TEST(DelayBound, LoftTighterThanGsfForAllMeshPaths)
{
    LoftParams lp;
    GsfParams gp;
    Mesh2D m(8, 8);
    // Longest path: 14 hops + ejection = 15 links.
    const auto worst = loftWorstCaseLatency(lp, flowHops(m, 0, 63));
    EXPECT_LT(worst, gsfWorstCaseLatency(gp));
}

TEST(DelayBound, FlowHopsIncludesEjection)
{
    Mesh2D m(8, 8);
    EXPECT_EQ(flowHops(m, 0, 0), 1u);
    EXPECT_EQ(flowHops(m, 0, 63), 15u);
}

TEST(HwCost, GsfStorageMatchesTable2)
{
    GsfParams p;
    const auto s = gsfRouterStorage(p);
    EXPECT_EQ(s.sourceQueue, 256000u);
    EXPECT_EQ(s.virtualChannels, 15360u);
    // Total within 1% of the paper's 271379 bits.
    EXPECT_NEAR(static_cast<double>(s.total()), 271379.0, 2714.0);
}

TEST(HwCost, LoftStorageMatchesTable2)
{
    LoftParams p;
    p.specBufferFlits = 16;
    const auto s = loftRouterStorage(p);
    EXPECT_EQ(s.inputBuffers, 139264u);
    EXPECT_EQ(s.lookaheadNetwork, 1536u);
    // Total within 5% of the paper's 184203 bits.
    EXPECT_NEAR(static_cast<double>(s.total()), 184203.0, 9210.0);
}

TEST(HwCost, LoftUsesLessStorageThanGsf)
{
    GsfParams g;
    LoftParams l;
    l.specBufferFlits = 12;
    const double ratio =
        static_cast<double>(loftRouterStorage(l).total()) /
        static_cast<double>(gsfRouterStorage(g).total());
    // Paper: LOFT uses ~32% less storage than GSF.
    EXPECT_LT(ratio, 0.75);
    EXPECT_GT(ratio, 0.55);
}

TEST(HwCost, AreaPowerProxyCalibration)
{
    LoftParams l;
    l.specBufferFlits = 12;
    const auto cost =
        estimateNocCost(loftRouterStorage(l).total(), 64);
    EXPECT_NEAR(cost.areaMm2, 32.0, 3.2);
    EXPECT_NEAR(cost.powerW, 50.0, 5.0);
}

TEST(HwCost, ProxyScalesWithNodes)
{
    const auto small = estimateNocCost(184203, 16);
    const auto large = estimateNocCost(184203, 64);
    EXPECT_NEAR(large.areaMm2 / small.areaMm2, 4.0, 1e-9);
}

TEST(GroupMetrics, SummarizesPerGroup)
{
    Mesh2D m(8, 8);
    TrafficPattern p;
    for (FlowId f = 0; f < 4; ++f) {
        FlowSpec fs;
        fs.id = f;
        fs.src = f;
        fs.dst = 63;
        p.flows.push_back(fs);
        p.groups.push_back(f / 2);
    }
    p.groupNames = {"a", "b"};
    MetricsCollector mc(4);
    mc.startMeasurement(0);
    for (int i = 0; i < 10; ++i)
        mc.onFlitEjected(0);
    for (int i = 0; i < 20; ++i)
        mc.onFlitEjected(1);
    for (int i = 0; i < 40; ++i)
        mc.onFlitEjected(2);
    for (int i = 0; i < 40; ++i)
        mc.onFlitEjected(3);
    mc.stopMeasurement(100);
    const auto groups = groupThroughputSummaries(mc, p);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].name, "a");
    EXPECT_DOUBLE_EQ(groups[0].throughput.avg, 0.15);
    EXPECT_DOUBLE_EQ(groups[0].throughput.min, 0.1);
    EXPECT_DOUBLE_EQ(groups[1].throughput.avg, 0.4);
    EXPECT_DOUBLE_EQ(groups[1].throughput.rsd, 0.0);
}

} // namespace
} // namespace noc
