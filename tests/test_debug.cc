/**
 * @file
 * Unit tests for the runtime debug-trace categories.
 */

#include <gtest/gtest.h>

#include "sim/debug.hh"

namespace noc
{
namespace
{

using debug::Category;

TEST(Debug, AllCategoriesHaveNames)
{
    const auto n = static_cast<unsigned>(Category::NumCategories);
    for (unsigned i = 0; i < n; ++i) {
        const char *name =
            debug::categoryName(static_cast<Category>(i));
        EXPECT_STRNE(name, "?");
    }
}

TEST(Debug, ConfigureSingleCategory)
{
    debug::configure("sched");
    EXPECT_TRUE(debug::enabled(Category::Sched));
    EXPECT_FALSE(debug::enabled(Category::Reset));
    debug::configure("");
}

TEST(Debug, ConfigureList)
{
    debug::configure("reset,la,credit");
    EXPECT_TRUE(debug::enabled(Category::Reset));
    EXPECT_TRUE(debug::enabled(Category::La));
    EXPECT_TRUE(debug::enabled(Category::Credit));
    EXPECT_FALSE(debug::enabled(Category::Sched));
    debug::configure("");
}

TEST(Debug, ConfigureAll)
{
    debug::configure("all");
    const auto n = static_cast<unsigned>(Category::NumCategories);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_TRUE(debug::enabled(static_cast<Category>(i)));
    debug::configure("");
}

TEST(Debug, EmptyDisablesEverything)
{
    debug::configure("all");
    debug::configure("");
    EXPECT_FALSE(debug::enabled(Category::Sched));
    EXPECT_FALSE(debug::enabled(Category::Gsf));
}

TEST(Debug, UnknownCategoryIsTolerated)
{
    debug::configure("sched,bogus");
    EXPECT_TRUE(debug::enabled(Category::Sched));
    debug::configure("");
}

} // namespace
} // namespace noc
