/**
 * @file
 * White-box tests of the LOFT building blocks through a hand-wired
 * two-node network slice (NI -> router -> router -> sink): scheduled
 * (emergent) vs early (speculative) transfer lanes, sticky quantum
 * buffer choice, credit conservation, input-table back-pressure, and
 * the local-reset conditions on a live link.
 */

#include <gtest/gtest.h>

#include "core/loft_network.hh"
#include "sim/simulator.hh"

namespace noc
{
namespace
{

/** A 2x1 slice with one flow 0 -> 1 built on a full LoftNetwork. */
class SliceTest : public ::testing::Test
{
  protected:
    void
    build(LoftParams p, double share = 0.25)
    {
        params_ = p;
        mesh_ = std::make_unique<Mesh2D>(2, 1);
        net_ = std::make_unique<LoftNetwork>(*mesh_, p);
        FlowSpec f;
        f.id = 0;
        f.src = 0;
        f.dst = 1;
        f.bwShare = share;
        net_->registerFlows({f});
        net_->attach(sim_);
        net_->metrics().startMeasurement(0);
    }

    static LoftParams
    smallParams()
    {
        LoftParams p;
        p.frameSizeFlits = 32;
        p.centralBufferFlits = 32;
        p.specBufferFlits = 8;
        p.maxFlows = 4;
        p.sourceQueueFlits = 0;
        return p;
    }

    void
    injectPackets(int n, std::uint32_t size = 4)
    {
        for (int i = 0; i < n; ++i) {
            Packet pkt;
            pkt.id = static_cast<PacketId>(i + 1);
            pkt.flow = 0;
            pkt.src = 0;
            pkt.dst = 1;
            pkt.sizeFlits = size;
            pkt.createdAt = sim_.now();
            pkt.enqueuedAt = sim_.now();
            ASSERT_TRUE(net_->inject(pkt));
        }
    }

    LoftParams params_;
    std::unique_ptr<Mesh2D> mesh_;
    std::unique_ptr<LoftNetwork> net_;
    Simulator sim_;
};

TEST_F(SliceTest, EarlyTransfersUseSpeculativeLane)
{
    build(smallParams());
    injectPackets(2);
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 2; }, 500));
    // An idle slice forwards everything early: speculative forwards
    // dominate, emergent transfers are the exception.
    EXPECT_GT(net_->totalSpeculativeForwards(),
              net_->totalEmergentForwards());
}

TEST_F(SliceTest, NoSpeculationMeansOnlyEmergentTransfers)
{
    LoftParams p = smallParams();
    p.speculativeSwitching = false;
    p.specBufferFlits = 0;
    build(p);
    injectPackets(2);
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 2; }, 2000));
    EXPECT_EQ(net_->totalSpeculativeForwards(), 0u);
    EXPECT_GT(net_->totalEmergentForwards(), 0u);
}

TEST_F(SliceTest, ScheduledPathBoundsLatencyWithoutSpeculation)
{
    // Without speculation, transfers happen at booked slots: per-hop
    // latency is a few slots, far below the frame-window bound.
    LoftParams p = smallParams();
    p.speculativeSwitching = false;
    p.specBufferFlits = 0;
    build(p);
    injectPackets(1);
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 1; }, 2000));
    const double bound = static_cast<double>(p.frameSizeFlits) *
                         p.windowFrames * 2; // 2 links
    EXPECT_LT(net_->metrics().avgPacketLatency(), bound);
}

TEST_F(SliceTest, CreditsFullyRestoredAfterDrain)
{
    build(smallParams());
    injectPackets(6);
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 6; }, 2000));
    sim_.run(64); // let all credit messages land
    EXPECT_EQ(net_->flitsInFlight(), 0u);
    // After full drain the link idles and resets, restoring a fresh
    // window: further traffic schedules immediately again.
    injectPackets(1);
    const Cycle before = sim_.now();
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 7; }, 200));
    EXPECT_LT(sim_.now() - before, 60u);
}

TEST_F(SliceTest, ThroughputScalesWithReservationWhenMechanismsOff)
{
    // With speculation and reset disabled, accepted throughput is
    // pinned to R/F per frame — the guaranteed rate. A longer frame
    // keeps the per-frame pipeline-fill boundary effect small.
    LoftParams p = smallParams();
    p.frameSizeFlits = 128;
    p.centralBufferFlits = 128;
    p.speculativeSwitching = false;
    p.specBufferFlits = 0;
    p.localStatusReset = false;
    build(p, 0.25); // R = 32 flits per 128-flit frame
    injectPackets(200);
    sim_.run(4000);
    net_->metrics().stopMeasurement(sim_.now());
    EXPECT_NEAR(net_->metrics().flowThroughput(0), 0.25, 0.05);
}

TEST_F(SliceTest, QuantumOfOneFlit)
{
    LoftParams p = smallParams();
    p.quantumFlits = 1;
    build(p);
    injectPackets(3, 3); // odd sizes with single-flit quanta
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 3; }, 1000));
    EXPECT_EQ(net_->metrics().totalFlits(), 9u);
    EXPECT_EQ(net_->totalAnomalyViolations(), 0u);
}

TEST_F(SliceTest, LargeQuantum)
{
    LoftParams p = smallParams();
    p.quantumFlits = 4;
    build(p);
    injectPackets(3, 8);
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 3; }, 1000));
    EXPECT_EQ(net_->metrics().totalFlits(), 24u);
}

TEST_F(SliceTest, UtilizationCountersTrackForwards)
{
    build(smallParams());
    injectPackets(8);
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 8; }, 2000));
    const auto util = net_->linkUtilization(sim_.now());
    // node 0 East and node 1 Local carried all 32 flits.
    const double east0 = util[0 * kNumPorts + portIndex(Port::East)];
    const double local1 = util[1 * kNumPorts + portIndex(Port::Local)];
    EXPECT_NEAR(east0 * sim_.now(), 32.0, 0.5);
    EXPECT_NEAR(local1 * sim_.now(), 32.0, 0.5);
    // No other port forwarded anything.
    double others = 0.0;
    for (std::size_t i = 0; i < util.size(); ++i) {
        if (i != 0 * kNumPorts + portIndex(Port::East) &&
            i != 1 * kNumPorts + portIndex(Port::Local)) {
            others += util[i];
        }
    }
    EXPECT_DOUBLE_EQ(others, 0.0);
}

TEST_F(SliceTest, SinkReassemblesInterleavedPackets)
{
    // Two flows from the same source interleave quanta on the link;
    // the sink must reassemble both packets correctly.
    LoftParams p = smallParams();
    mesh_ = std::make_unique<Mesh2D>(2, 1);
    net_ = std::make_unique<LoftNetwork>(*mesh_, p);
    FlowSpec a, b;
    a.id = 0;
    a.src = 0;
    a.dst = 1;
    a.bwShare = 0.25;
    b.id = 1;
    b.src = 0;
    b.dst = 1;
    b.bwShare = 0.25;
    net_->registerFlows({a, b});
    net_->attach(sim_);
    net_->metrics().startMeasurement(0);
    for (PacketId id = 1; id <= 6; ++id) {
        Packet pkt;
        pkt.id = id;
        pkt.flow = id % 2;
        pkt.src = 0;
        pkt.dst = 1;
        pkt.sizeFlits = 4;
        ASSERT_TRUE(net_->inject(pkt));
    }
    ASSERT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 6; }, 2000));
    EXPECT_EQ(net_->metrics().flow(0).flitsEjected, 12u);
    EXPECT_EQ(net_->metrics().flow(1).flitsEjected, 12u);
}

} // namespace
} // namespace noc
