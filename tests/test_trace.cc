/**
 * @file
 * Tests for trace recording, file round trips, and cycle-accurate
 * replay into a LOFT network.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/loft_network.hh"
#include "sim/simulator.hh"
#include "traffic/trace.hh"

namespace noc
{
namespace
{

TraceEvent
ev(Cycle cycle, NodeId src, NodeId dst, FlowId flow,
   std::uint32_t size = 4)
{
    return TraceEvent{cycle, src, dst, flow, size};
}

TEST(Trace, AddAndTotals)
{
    Trace t;
    t.add(ev(0, 0, 5, 0));
    t.add(ev(3, 1, 6, 1, 2));
    t.add(ev(3, 0, 5, 0));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.totalFlits(), 10u);
}

TEST(Trace, RejectsOutOfOrder)
{
    Trace t;
    t.add(ev(5, 0, 1, 0));
    EXPECT_EXIT(t.add(ev(4, 0, 1, 0)), ::testing::ExitedWithCode(1),
                "nondecreasing");
}

TEST(Trace, RejectsZeroSize)
{
    Trace t;
    EXPECT_EXIT(t.add(ev(0, 0, 1, 0, 0)), ::testing::ExitedWithCode(1),
                "zero-size");
}

TEST(Trace, FlowTableDerivation)
{
    Trace t;
    t.add(ev(0, 0, 5, 0));
    t.add(ev(1, 3, 9, 1));
    t.add(ev(2, 0, 5, 0));
    const auto flows = t.flowTable();
    ASSERT_EQ(flows.size(), 2u);
    EXPECT_EQ(flows[0].src, 0u);
    EXPECT_EQ(flows[0].dst, 5u);
    EXPECT_EQ(flows[1].src, 3u);
}

TEST(Trace, FlowTableRejectsInconsistentEndpoints)
{
    Trace t;
    t.add(ev(0, 0, 5, 0));
    t.add(ev(1, 1, 5, 0)); // same flow id, different source
    EXPECT_EXIT((void)t.flowTable(), ::testing::ExitedWithCode(1),
                "inconsistent");
}

TEST(Trace, FlowTableRejectsSparseIds)
{
    Trace t;
    t.add(ev(0, 0, 5, 2));
    EXPECT_EXIT((void)t.flowTable(), ::testing::ExitedWithCode(1),
                "dense");
}

TEST(Trace, FileRoundTrip)
{
    Trace t;
    t.add(ev(0, 0, 5, 0));
    t.add(ev(7, 3, 9, 1, 6));
    const std::string path = ::testing::TempDir() + "/loft_trace_test";
    t.save(path);
    const Trace back = Trace::load(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.events()[1].cycle, 7u);
    EXPECT_EQ(back.events()[1].sizeFlits, 6u);
    EXPECT_EQ(back.events()[1].flow, 1u);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsMalformed)
{
    const std::string path = ::testing::TempDir() + "/loft_trace_bad";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("1 2 3\n", f); // too few fields
        std::fclose(f);
    }
    EXPECT_EXIT((void)Trace::load(path), ::testing::ExitedWithCode(1),
                "expected");
    std::remove(path.c_str());
}

TEST(TraceReplay, DeliversEverythingOnLoft)
{
    Mesh2D mesh(4, 4);
    LoftParams p;
    p.frameSizeFlits = 64;
    p.centralBufferFlits = 64;
    p.maxFlows = 16;
    p.sourceQueueFlits = 0;

    Trace t;
    // Two interleaved flows, bursty.
    for (Cycle c = 0; c < 200; c += 20) {
        t.add(ev(c, 0, 15, 0));
        t.add(ev(c + 3, 5, 10, 1));
    }
    auto flows = t.flowTable();
    for (auto &f : flows)
        f.bwShare = 0.25;

    LoftNetwork net(mesh, p);
    net.registerFlows(flows);
    TraceReplayer replayer(net, t);
    Simulator sim;
    sim.add(&replayer);
    net.attach(sim);
    net.metrics().startMeasurement(0);

    ASSERT_TRUE(sim.runUntil(
        [&] {
            return replayer.done() &&
                   net.metrics().totalFlits() == t.totalFlits();
        },
        5000));
    EXPECT_EQ(replayer.injected(), t.size());
    EXPECT_EQ(net.metrics().totalPackets(), t.size());
}

TEST(TraceReplay, RetriesWhenNiFull)
{
    Mesh2D mesh(4, 4);
    LoftParams p;
    p.frameSizeFlits = 64;
    p.centralBufferFlits = 64;
    p.maxFlows = 16;
    p.sourceQueueFlits = 8; // room for two packets only

    Trace t;
    for (int i = 0; i < 10; ++i)
        t.add(ev(0, 0, 15, 0)); // all at cycle 0
    auto flows = t.flowTable();
    flows[0].bwShare = 0.5;

    LoftNetwork net(mesh, p);
    net.registerFlows(flows);
    TraceReplayer replayer(net, t);
    Simulator sim;
    sim.add(&replayer);
    net.attach(sim);
    net.metrics().startMeasurement(0);

    ASSERT_TRUE(sim.runUntil(
        [&] { return net.metrics().totalPackets() == 10; }, 5000));
    EXPECT_TRUE(replayer.done());
}

} // namespace
} // namespace noc
