/**
 * @file
 * Unit tests for XY dimension-order routing.
 */

#include <gtest/gtest.h>

#include "net/routing.hh"

namespace noc
{
namespace
{

TEST(Routing, XFirstThenY)
{
    Mesh2D m(8, 8);
    // From (1,1)=9 to (4,5)=44: east until x matches, then north.
    EXPECT_EQ(xyRoute(m, 9, 44), Port::East);
    EXPECT_EQ(xyRoute(m, 12, 44), Port::North);
    EXPECT_EQ(xyRoute(m, 36, 44), Port::North);
    EXPECT_EQ(xyRoute(m, 44, 44), Port::Local);
}

TEST(Routing, WestAndSouth)
{
    Mesh2D m(8, 8);
    EXPECT_EQ(xyRoute(m, 63, 0), Port::West);
    EXPECT_EQ(xyRoute(m, 56, 0), Port::South);
}

TEST(Routing, PathTerminatesWithEjection)
{
    Mesh2D m(8, 8);
    const auto path = xyPath(m, 0, 63);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front().node, 0u);
    EXPECT_EQ(path.back().node, 63u);
    EXPECT_EQ(path.back().out, Port::Local);
    // 7 east + 7 north + ejection.
    EXPECT_EQ(path.size(), 15u);
}

TEST(Routing, PathLengthMatchesHopDistance)
{
    Mesh2D m(6, 5);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            const auto path = xyPath(m, s, d);
            EXPECT_EQ(path.size(), m.hopDistance(s, d) + 1);
        }
    }
}

TEST(Routing, PathIsConnected)
{
    Mesh2D m(8, 8);
    const auto path = xyPath(m, 5, 58);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_EQ(m.neighbor(path[i].node, path[i].out),
                  path[i + 1].node);
    }
}

TEST(Routing, SelfPathIsJustEjection)
{
    Mesh2D m(4, 4);
    const auto path = xyPath(m, 5, 5);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0].out, Port::Local);
}

TEST(Routing, NoYThenXMoves)
{
    // Once a route goes vertical it never turns horizontal again
    // (deadlock freedom of dimension order).
    Mesh2D m(8, 8);
    for (NodeId s = 0; s < m.numNodes(); s += 3) {
        for (NodeId d = 0; d < m.numNodes(); d += 5) {
            bool vertical = false;
            for (const auto &hop : xyPath(m, s, d)) {
                const bool horizontal =
                    hop.out == Port::East || hop.out == Port::West;
                if (vertical) {
                    EXPECT_FALSE(horizontal);
                }
                if (hop.out == Port::North || hop.out == Port::South)
                    vertical = true;
            }
        }
    }
}

} // namespace
} // namespace noc
