/**
 * @file
 * Unit tests for the traffic patterns of Section 6.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "net/routing.hh"
#include "traffic/pattern.hh"

namespace noc
{
namespace
{

TEST(Pattern, UniformOneFlowPerSource)
{
    Mesh2D m(8, 8);
    const auto p = uniformPattern(m);
    EXPECT_EQ(p.flows.size(), 64u);
    for (NodeId n = 0; n < 64; ++n) {
        EXPECT_EQ(p.flows[n].src, n);
        EXPECT_TRUE(p.flows[n].randomDst());
    }
}

TEST(Pattern, HotspotAllToNode63)
{
    Mesh2D m(8, 8);
    const auto p = hotspotPattern(m, 63);
    EXPECT_EQ(p.flows.size(), 63u);
    for (const auto &f : p.flows) {
        EXPECT_EQ(f.dst, 63u);
        EXPECT_NE(f.src, 63u);
    }
}

TEST(Pattern, DosMatchesCaseStudyOne)
{
    Mesh2D m(8, 8);
    const auto p = dosPattern(m);
    ASSERT_EQ(p.flows.size(), 3u);
    EXPECT_EQ(p.flows[0].src, 0u);
    EXPECT_EQ(p.flows[1].src, 48u);
    EXPECT_EQ(p.flows[2].src, 56u);
    for (const auto &f : p.flows) {
        EXPECT_EQ(f.dst, 63u);
        EXPECT_DOUBLE_EQ(f.bwShare, 0.25); // 1/4 link bandwidth each
    }
    EXPECT_EQ(p.groups[0], 0u);
    EXPECT_EQ(p.groups[1], 1u);
    EXPECT_EQ(p.groups[2], 2u);
}

TEST(Pattern, PathologicalMatchesFigOne)
{
    Mesh2D m(8, 8);
    const auto p = pathologicalPattern(m);
    const NodeId center = m.centerNode();
    std::size_t greys = 0;
    bool stripped_seen = false;
    for (std::size_t i = 0; i < p.flows.size(); ++i) {
        const auto &f = p.flows[i];
        if (p.groups[i] == 0) {
            ++greys;
            EXPECT_EQ(m.xOf(f.src), 0u);
            EXPECT_EQ(f.dst, center);
        } else {
            stripped_seen = true;
            EXPECT_EQ(m.hopDistance(f.src, f.dst), 1u);
        }
    }
    EXPECT_EQ(greys, 8u);
    EXPECT_TRUE(stripped_seen);
}

TEST(Pattern, StrippedPathDisjointFromGreyPaths)
{
    // The defining property of Fig. 1: the stripped node shares no link
    // with the grey flows under XY routing.
    Mesh2D m(8, 8);
    const auto p = pathologicalPattern(m);
    std::set<std::pair<NodeId, Port>> grey_links;
    std::set<std::pair<NodeId, Port>> stripped_links;
    for (std::size_t i = 0; i < p.flows.size(); ++i) {
        auto &links = p.groups[i] == 0 ? grey_links : stripped_links;
        for (const auto &hop :
             xyPath(m, p.flows[i].src, p.flows[i].dst)) {
            links.insert({hop.node, hop.out});
        }
    }
    for (const auto &l : stripped_links)
        EXPECT_EQ(grey_links.count(l), 0u);
}

TEST(Pattern, TransposeSymmetric)
{
    Mesh2D m(8, 8);
    const auto p = transposePattern(m);
    for (const auto &f : p.flows) {
        EXPECT_EQ(m.xOf(f.src), m.yOf(f.dst));
        EXPECT_EQ(m.yOf(f.src), m.xOf(f.dst));
    }
}

TEST(Pattern, BitComplementEndsOpposite)
{
    Mesh2D m(8, 8);
    const auto p = bitComplementPattern(m);
    for (const auto &f : p.flows)
        EXPECT_EQ(f.dst, 63u - f.src);
}

TEST(Pattern, NeighborAllOneHop)
{
    Mesh2D m(8, 8);
    const auto p = neighborPattern(m);
    EXPECT_EQ(p.flows.size(), 64u);
    for (const auto &f : p.flows)
        EXPECT_EQ(m.hopDistance(f.src, f.dst), 1u);
}

TEST(Pattern, TornadoShiftsHalfWidth)
{
    Mesh2D m(8, 8);
    const auto p = tornadoPattern(m);
    for (const auto &f : p.flows) {
        EXPECT_EQ(m.yOf(f.dst), m.yOf(f.src));
        EXPECT_EQ(m.xOf(f.dst), (m.xOf(f.src) + 3) % 8);
    }
}

TEST(Pattern, ShuffleRotatesBits)
{
    Mesh2D m(8, 8);
    const auto p = shufflePattern(m);
    for (const auto &f : p.flows) {
        const NodeId expect =
            static_cast<NodeId>(((f.src << 1) | (f.src >> 5)) & 63);
        EXPECT_EQ(f.dst, expect);
        EXPECT_NE(f.dst, f.src);
    }
    // Nodes 0 and 63 map to themselves and are omitted.
    EXPECT_EQ(p.flows.size(), 62u);
}

TEST(Pattern, ShuffleNonPowerOfTwoFallsBack)
{
    Mesh2D m(3, 2);
    const auto p = shufflePattern(m);
    for (const auto &f : p.flows)
        EXPECT_EQ(f.dst, (2 * f.src) % 6);
}

TEST(Pattern, TornadoOddWidthShiftsCeilHalf)
{
    // Regression: the shift is ceil(W/2) - 1 hops around the ring. The
    // old floor(W/2) - 1 under-rotated every odd width (and produced an
    // all-self pattern at W = 3).
    for (const auto &[w, h] : std::vector<std::pair<std::uint32_t,
                                                    std::uint32_t>>{
             {7, 3}, {5, 5}, {3, 4}}) {
        Mesh2D m(w, h);
        const std::uint32_t shift = (w + 1) / 2 - 1;
        EXPECT_NE(shift, w / 2 - 1) << "old formula must differ, W=" << w;
        const auto p = tornadoPattern(m);
        EXPECT_EQ(p.flows.size(), static_cast<std::size_t>(w) * h)
            << "W=" << w;
        for (const auto &f : p.flows) {
            EXPECT_EQ(m.yOf(f.dst), m.yOf(f.src));
            EXPECT_EQ(m.xOf(f.dst), (m.xOf(f.src) + shift) % w);
        }
    }
}

TEST(Pattern, TornadoDegenerateWidthsAreEmpty)
{
    // W <= 2 has no non-self tornado destination (and W = 1 would
    // underflow the shift); the pattern is explicitly empty.
    EXPECT_TRUE(tornadoPattern(Mesh2D(2, 4)).flows.empty());
    EXPECT_TRUE(tornadoPattern(Mesh2D(1, 4)).flows.empty());
}

TEST(Pattern, TransposeRectangularIsBijective)
{
    // Regression: on W != H meshes the old modulo wrap aliased several
    // sources onto one destination. The index transpose x+y*W -> y+x*H
    // is a bijection on any mesh.
    for (const auto &[w, h] : std::vector<std::pair<std::uint32_t,
                                                    std::uint32_t>>{
             {4, 2}, {2, 4}, {6, 4}, {5, 3}}) {
        Mesh2D m(w, h);
        const auto p = transposePattern(m);
        std::set<NodeId> dsts;
        for (const auto &f : p.flows) {
            EXPECT_EQ(f.dst, m.yOf(f.src) + m.xOf(f.src) * h);
            EXPECT_LT(f.dst, m.numNodes());
            EXPECT_NE(f.dst, f.src);
            EXPECT_TRUE(dsts.insert(f.dst).second)
                << "duplicate destination " << f.dst << " on " << w
                << "x" << h;
        }
    }
}

TEST(Pattern, DosGeometryDerivesFromTheMesh)
{
    // The Fig. 12 roles must scale to any mesh >= 8x8 instead of
    // hardcoding the 8x8 node ids.
    Mesh2D m(12, 10);
    const auto p = dosPattern(m);
    ASSERT_EQ(p.flows.size(), 3u);
    const NodeId hotspot = m.nodeAt(11, 9);
    EXPECT_EQ(p.flows[0].src, m.nodeAt(0, 0));
    EXPECT_EQ(p.flows[1].src, m.nodeAt(0, 8));
    EXPECT_EQ(p.flows[2].src, m.nodeAt(0, 9));
    for (const auto &f : p.flows) {
        EXPECT_EQ(f.dst, hotspot);
        EXPECT_LT(f.src, m.numNodes());
        EXPECT_DOUBLE_EQ(f.bwShare, 0.25);
    }
}

TEST(Pattern, DosRejectsSmallMeshes)
{
    EXPECT_DEATH((void)dosPattern(Mesh2D(4, 4)), "8x8");
}

/// ---------------------------------------------------------------
/// Property test: every factory, on square, rectangular and
/// odd-width meshes, yields in-range non-self flows with dense ids.
/// ---------------------------------------------------------------

struct NamedFactory
{
    const char *name;
    std::function<TrafficPattern(const Mesh2D &)> make;
};

class PatternProperty
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(PatternProperty, AllFactoriesProduceValidFlows)
{
    const auto [w, h] = GetParam();
    Mesh2D m(w, h);
    std::vector<NamedFactory> factories = {
        {"uniform", uniformPattern},
        {"transpose", transposePattern},
        {"bitComplement", bitComplementPattern},
        {"neighbor", neighborPattern},
        {"tornado", tornadoPattern},
        {"shuffle", shufflePattern},
        {"pathological", pathologicalPattern},
        {"hotspot",
         [](const Mesh2D &mm) {
             return hotspotPattern(mm, mm.numNodes() - 1);
         }},
    };
    if (w >= 8 && h >= 8)
        factories.push_back({"dos", dosPattern});

    for (const auto &factory : factories) {
        const TrafficPattern p = factory.make(m);
        ASSERT_EQ(p.groups.size(), p.flows.size()) << factory.name;
        for (std::size_t i = 0; i < p.flows.size(); ++i) {
            const auto &f = p.flows[i];
            EXPECT_EQ(f.id, i) << factory.name << ": ids must be dense";
            EXPECT_LT(f.src, m.numNodes()) << factory.name;
            EXPECT_LT(p.groups[i], p.groupNames.size()) << factory.name;
            if (f.randomDst())
                continue;
            EXPECT_LT(f.dst, m.numNodes())
                << factory.name << " flow " << i << " on " << w << "x"
                << h;
            EXPECT_NE(f.dst, f.src)
                << factory.name << " flow " << i << " on " << w << "x"
                << h;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Meshes, PatternProperty,
    ::testing::Values(std::pair<std::uint32_t, std::uint32_t>{8, 8},
                      std::pair<std::uint32_t, std::uint32_t>{4, 4},
                      std::pair<std::uint32_t, std::uint32_t>{6, 4},
                      std::pair<std::uint32_t, std::uint32_t>{4, 6},
                      std::pair<std::uint32_t, std::uint32_t>{7, 3},
                      std::pair<std::uint32_t, std::uint32_t>{5, 5},
                      std::pair<std::uint32_t, std::uint32_t>{3, 2},
                      std::pair<std::uint32_t, std::uint32_t>{9, 9}));

TEST(Pattern, FlowIdsAreDense)
{
    Mesh2D m(8, 8);
    for (const auto &p : {uniformPattern(m), hotspotPattern(m, 63),
                          pathologicalPattern(m)}) {
        for (std::size_t i = 0; i < p.flows.size(); ++i)
            EXPECT_EQ(p.flows[i].id, i);
    }
}

} // namespace
} // namespace noc
