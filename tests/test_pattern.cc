/**
 * @file
 * Unit tests for the traffic patterns of Section 6.
 */

#include <gtest/gtest.h>

#include <set>

#include "net/routing.hh"
#include "traffic/pattern.hh"

namespace noc
{
namespace
{

TEST(Pattern, UniformOneFlowPerSource)
{
    Mesh2D m(8, 8);
    const auto p = uniformPattern(m);
    EXPECT_EQ(p.flows.size(), 64u);
    for (NodeId n = 0; n < 64; ++n) {
        EXPECT_EQ(p.flows[n].src, n);
        EXPECT_TRUE(p.flows[n].randomDst());
    }
}

TEST(Pattern, HotspotAllToNode63)
{
    Mesh2D m(8, 8);
    const auto p = hotspotPattern(m, 63);
    EXPECT_EQ(p.flows.size(), 63u);
    for (const auto &f : p.flows) {
        EXPECT_EQ(f.dst, 63u);
        EXPECT_NE(f.src, 63u);
    }
}

TEST(Pattern, DosMatchesCaseStudyOne)
{
    Mesh2D m(8, 8);
    const auto p = dosPattern(m);
    ASSERT_EQ(p.flows.size(), 3u);
    EXPECT_EQ(p.flows[0].src, 0u);
    EXPECT_EQ(p.flows[1].src, 48u);
    EXPECT_EQ(p.flows[2].src, 56u);
    for (const auto &f : p.flows) {
        EXPECT_EQ(f.dst, 63u);
        EXPECT_DOUBLE_EQ(f.bwShare, 0.25); // 1/4 link bandwidth each
    }
    EXPECT_EQ(p.groups[0], 0u);
    EXPECT_EQ(p.groups[1], 1u);
    EXPECT_EQ(p.groups[2], 2u);
}

TEST(Pattern, PathologicalMatchesFigOne)
{
    Mesh2D m(8, 8);
    const auto p = pathologicalPattern(m);
    const NodeId center = m.centerNode();
    std::size_t greys = 0;
    bool stripped_seen = false;
    for (std::size_t i = 0; i < p.flows.size(); ++i) {
        const auto &f = p.flows[i];
        if (p.groups[i] == 0) {
            ++greys;
            EXPECT_EQ(m.xOf(f.src), 0u);
            EXPECT_EQ(f.dst, center);
        } else {
            stripped_seen = true;
            EXPECT_EQ(m.hopDistance(f.src, f.dst), 1u);
        }
    }
    EXPECT_EQ(greys, 8u);
    EXPECT_TRUE(stripped_seen);
}

TEST(Pattern, StrippedPathDisjointFromGreyPaths)
{
    // The defining property of Fig. 1: the stripped node shares no link
    // with the grey flows under XY routing.
    Mesh2D m(8, 8);
    const auto p = pathologicalPattern(m);
    std::set<std::pair<NodeId, Port>> grey_links;
    std::set<std::pair<NodeId, Port>> stripped_links;
    for (std::size_t i = 0; i < p.flows.size(); ++i) {
        auto &links = p.groups[i] == 0 ? grey_links : stripped_links;
        for (const auto &hop :
             xyPath(m, p.flows[i].src, p.flows[i].dst)) {
            links.insert({hop.node, hop.out});
        }
    }
    for (const auto &l : stripped_links)
        EXPECT_EQ(grey_links.count(l), 0u);
}

TEST(Pattern, TransposeSymmetric)
{
    Mesh2D m(8, 8);
    const auto p = transposePattern(m);
    for (const auto &f : p.flows) {
        EXPECT_EQ(m.xOf(f.src), m.yOf(f.dst));
        EXPECT_EQ(m.yOf(f.src), m.xOf(f.dst));
    }
}

TEST(Pattern, BitComplementEndsOpposite)
{
    Mesh2D m(8, 8);
    const auto p = bitComplementPattern(m);
    for (const auto &f : p.flows)
        EXPECT_EQ(f.dst, 63u - f.src);
}

TEST(Pattern, NeighborAllOneHop)
{
    Mesh2D m(8, 8);
    const auto p = neighborPattern(m);
    EXPECT_EQ(p.flows.size(), 64u);
    for (const auto &f : p.flows)
        EXPECT_EQ(m.hopDistance(f.src, f.dst), 1u);
}

TEST(Pattern, TornadoShiftsHalfWidth)
{
    Mesh2D m(8, 8);
    const auto p = tornadoPattern(m);
    for (const auto &f : p.flows) {
        EXPECT_EQ(m.yOf(f.dst), m.yOf(f.src));
        EXPECT_EQ(m.xOf(f.dst), (m.xOf(f.src) + 3) % 8);
    }
}

TEST(Pattern, ShuffleRotatesBits)
{
    Mesh2D m(8, 8);
    const auto p = shufflePattern(m);
    for (const auto &f : p.flows) {
        const NodeId expect =
            static_cast<NodeId>(((f.src << 1) | (f.src >> 5)) & 63);
        EXPECT_EQ(f.dst, expect);
        EXPECT_NE(f.dst, f.src);
    }
    // Nodes 0 and 63 map to themselves and are omitted.
    EXPECT_EQ(p.flows.size(), 62u);
}

TEST(Pattern, ShuffleNonPowerOfTwoFallsBack)
{
    Mesh2D m(3, 2);
    const auto p = shufflePattern(m);
    for (const auto &f : p.flows)
        EXPECT_EQ(f.dst, (2 * f.src) % 6);
}

TEST(Pattern, FlowIdsAreDense)
{
    Mesh2D m(8, 8);
    for (const auto &p : {uniformPattern(m), hotspotPattern(m, 63),
                          pathologicalPattern(m)}) {
        for (std::size_t i = 0; i < p.flows.size(); ++i)
            EXPECT_EQ(p.flows[i].id, i);
    }
}

} // namespace
} // namespace noc
