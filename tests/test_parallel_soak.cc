/**
 * @file
 * Long-soak determinism for the partitioned simulator: a 16x16 LOFT
 * mesh driven for a long window (cycle count scalable via
 * LOFT_SOAK_CYCLES; CI's sanitizer job runs it in the millions) must
 * produce a fingerprint bit-identical to the serial run, and repeated
 * partitioned runs must not grow resident memory — the domain buffers
 * (pending channel slots, deferred observer events, deferred metric
 * samples) are drained every cycle and reused, never accreted.
 *
 * The ScaleSoak suite scales the discipline up: a 32x32 mesh (LOFT and
 * wormhole) must run its whole measurement window with a heap
 * allocation count of exactly zero (docs/SCALE.md) and a flat resident
 * set across repeated runs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "harness/sweep.hh"
#include "qos/allocation.hh"

#ifdef __linux__
#include <fstream>
#include <unistd.h>
#endif

namespace noc
{
namespace
{

/** Measured cycles: LOFT_SOAK_CYCLES env override, else a smoke run. */
Cycle
soakCycles()
{
    if (const char *env = std::getenv("LOFT_SOAK_CYCLES")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<Cycle>(v);
    }
    return 1500;
}

RunConfig
soakConfig()
{
    RunConfig c;
    c.kind = NetKind::Loft;
    c.meshWidth = 16;
    c.meshHeight = 16;
    c.warmupCycles = 300;
    c.measureCycles = soakCycles();
    c.audit = true;
    // 256 uniform random-destination flows reserve on every output
    // port, so the frame must cover maxFlows x quantum bookings
    // (1024 / 256 flows = 4 flits of quantum headroom per flow), and
    // Theorem I wants the central buffer at least one frame deep.
    c.loft.frameSizeFlits = 1024;
    c.loft.centralBufferFlits = 1024;
    c.loft.specBufferFlits = 16;
    c.loft.maxFlows = 256;
    c.loft.sourceQueueFlits = 64;
    return c;
}

TrafficPattern
soakPattern()
{
    Mesh2D mesh(16, 16);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 256);
    return p;
}

#ifdef __linux__
std::size_t
residentBytes()
{
    std::ifstream statm("/proc/self/statm");
    std::size_t pages = 0;
    std::size_t resident = 0;
    statm >> pages >> resident;
    return resident * static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}
#endif

TEST(ParallelSoak, LargeMeshLongRunIsBitIdentical)
{
    const RunConfig base = soakConfig();
    const TrafficPattern pattern = soakPattern();
    constexpr double kLoad = 0.08;

    RunConfig serial_cfg = base;
    serial_cfg.intraRunWorkers = 1;
    const RunResult serial = runExperiment(serial_cfg, pattern, kLoad);
    ASSERT_GT(serial.totalPackets, 0u);
    ASSERT_EQ(serial.auditHardViolations, 0u) << serial.auditReport;

    RunConfig par_cfg = base;
    par_cfg.intraRunWorkers = 4;
    const RunResult par = runExperiment(par_cfg, pattern, kLoad);
    EXPECT_EQ(sweepFingerprint(serial), sweepFingerprint(par));
    EXPECT_EQ(par.auditHardViolations, 0u) << par.auditReport;
}

TEST(ParallelSoak, RepeatedPartitionedRunsKeepMemoryFlat)
{
#ifndef __linux__
    GTEST_SKIP() << "resident-set accounting requires /proc";
#else
    RunConfig cfg = soakConfig();
    // Memory flatness is about the per-cycle drain of the domain
    // buffers, not the cycle horizon; a shorter window keeps the
    // sanitizer-job runtime inside budget (identity above covers the
    // full horizon).
    cfg.measureCycles = std::min<Cycle>(cfg.measureCycles, 50000);
    cfg.intraRunWorkers = 4;
    const TrafficPattern pattern = soakPattern();

    // First run pays one-time costs (allocator warmup, pool spawn,
    // buffer high-water marks); later runs must plateau.
    runExperiment(cfg, pattern, 0.08);
    const std::size_t baseline = residentBytes();
    runExperiment(cfg, pattern, 0.08);
    const std::size_t after = residentBytes();

    constexpr std::size_t kBudget = 64u << 20;
    EXPECT_LT(after, baseline + kBudget)
        << "resident set grew " << (after - baseline)
        << " bytes across one partitioned run";
#endif
}

// ---- ScaleSoak: 32x32, zero allocations and flat memory -------------

RunConfig
scaleSoakConfig(NetKind kind)
{
    RunConfig c;
    c.kind = kind;
    c.meshWidth = 32;
    c.meshHeight = 32;
    // Warm-up is the allocation ramp (pool spawn, ring and buffer
    // high-water growth); the measurement window then runs with the
    // census asserting an exact zero.
    c.warmupCycles = 4000;
    c.measureCycles = soakCycles();
    c.audit = false;
    c.intraRunWorkers = 2;
    c.loft.frameSizeFlits = 256;
    c.loft.centralBufferFlits = 256;
    c.loft.specBufferFlits = 16;
    c.loft.maxFlows = 64;
    c.loft.sourceQueueFlits = 64;
    return c;
}

void
expectFlatScaleSoak(NetKind kind)
{
    const RunConfig cfg = scaleSoakConfig(kind);
    Mesh2D mesh(cfg.meshWidth, cfg.meshHeight);
    TrafficPattern pattern = neighborPattern(mesh);
    setEqualSharesByMaxFlows(pattern.flows, cfg.loft.maxFlows);

    const RunResult first = runExperiment(cfg, pattern, 0.05);
    ASSERT_GT(first.totalPackets, 0u);
    EXPECT_EQ(first.steadyStateHeapAllocs, 0u)
        << "32x32 measurement window allocated on the heap";

#ifdef __linux__
    // A second full run re-pays only per-run state (network, pools);
    // the resident set must not creep across runs.
    const std::size_t baseline = residentBytes();
    const RunResult second = runExperiment(cfg, pattern, 0.05);
    EXPECT_EQ(second.steadyStateHeapAllocs, 0u);
    const std::size_t after = residentBytes();
    constexpr std::size_t kBudget = 64u << 20;
    EXPECT_LT(after, baseline + kBudget)
        << "resident set grew " << (after - baseline)
        << " bytes across one 32x32 run";
#endif
}

TEST(ScaleSoak, Loft32x32MeasureWindowIsAllocationFree)
{
    expectFlatScaleSoak(NetKind::Loft);
}

TEST(ScaleSoak, Wormhole32x32MeasureWindowIsAllocationFree)
{
    expectFlatScaleSoak(NetKind::Wormhole);
}

} // namespace
} // namespace noc
