/**
 * @file
 * Tests for the zero-allocation steady state: the heap-allocation
 * census (sim/alloc), the growable ring deque and pool allocator it
 * relies on (sim/ring_deque, sim/pool), the no-rehash discipline of
 * the pre-sized hash tables, the full-width flit payload mix
 * (ScalePayload regressions), and the end-to-end guarantee that the
 * measurement phase of an experiment performs zero heap allocations
 * on all three network kinds.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "gsf/gsf_barrier.hh"
#include "harness/experiment.hh"
#include "net/flit.hh"
#include "qos/allocation.hh"
#include "sim/alloc.hh"
#include "sim/pool.hh"
#include "sim/ring_deque.hh"
#include "traffic/pattern.hh"

namespace noc
{
namespace
{

TEST(AllocCensus, CountsOperatorNewAndDelete)
{
    const std::uint64_t before = heapAllocCount();
    int *p = new int(42);
    const std::uint64_t after = heapAllocCount();
    EXPECT_GT(after, before);
    delete p;
    // Deallocation never decrements: the census counts allocation
    // events, not live bytes.
    EXPECT_GE(heapAllocCount(), after);
}

TEST(RingDeque, MatchesDequeReference)
{
    RingDeque<int> ring;
    std::deque<int> ref;
    // Deterministic mixed push/pop schedule crossing several growth
    // boundaries, including wrapped head positions.
    std::uint64_t x = 0x243f6a8885a308d3ull;
    for (int step = 0; step < 20000; ++step) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const int op = static_cast<int>(x >> 61);
        if (op < 5 || ref.empty()) {
            const int v = static_cast<int>(x & 0xffff);
            ring.push_back(v);
            ref.push_back(v);
        } else {
            ASSERT_EQ(ring.front(), ref.front());
            ring.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(ring.size(), ref.size());
        ASSERT_EQ(ring.empty(), ref.empty());
        if (!ref.empty()) {
            ASSERT_EQ(ring.front(), ref.front());
            ASSERT_EQ(ring.back(), ref.back());
        }
    }
    while (!ref.empty()) {
        ASSERT_EQ(ring.front(), ref.front());
        ring.pop_front();
        ref.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(RingDeque, InsertAtKeepsOrder)
{
    RingDeque<int> ring;
    // Force a wrapped layout: fill, drain half, refill.
    for (int i = 0; i < 12; ++i)
        ring.push_back(i);
    for (int i = 0; i < 6; ++i)
        ring.pop_front();
    for (int i = 12; i < 18; ++i)
        ring.push_back(i);
    // ring = [6..17]; insert in the middle and at both ends.
    ring.insertAt(0, 100);
    ring.insertAt(5, 200);
    ring.insertAt(ring.size(), 300);
    std::vector<int> expect = {100, 6, 7, 8, 9, 200, 10, 11, 12, 13,
                               14, 15, 16, 17, 300};
    ASSERT_EQ(ring.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(ring[i], expect[i]) << "index " << i;
}

TEST(RingDeque, SteadyChurnDoesNotAllocate)
{
    RingDeque<std::uint64_t> ring;
    // Warm up to the high-water occupancy. The churn loop pushes
    // before popping, so its peak is 65 elements — run one iteration
    // of it here so the capacity plateaus before the census sample.
    for (int i = 0; i < 64; ++i)
        ring.push_back(i);
    ring.push_back(64);
    ring.pop_front();
    const std::uint64_t allocs0 = heapAllocCount();
    // FIFO churn at or below the high-water mark: a std::deque would
    // allocate/free 512-byte map nodes here; the ring must not.
    for (int i = 0; i < 100000; ++i) {
        ring.push_back(i);
        ring.pop_front();
    }
    EXPECT_EQ(heapAllocCount(), allocs0);
}

TEST(Pool, RecyclesMapNodes)
{
    Pool pool;
    PoolMap<std::uint64_t, std::uint64_t> m{
        PoolAlloc<std::pair<const std::uint64_t, std::uint64_t>>(&pool)};
    // Warm-up: reach the peak live population once so the pool's free
    // lists hold every node this loop will ever need.
    for (std::uint64_t i = 0; i < 64; ++i)
        m.emplace(i, i);
    m.clear();
    const std::uint64_t allocs0 = heapAllocCount();
    const std::size_t chunks0 = pool.chunkCount();
    for (std::uint64_t round = 0; round < 1000; ++round) {
        for (std::uint64_t i = 0; i < 64; ++i)
            m.emplace(i ^ (round << 8), i);
        m.clear();
    }
    EXPECT_EQ(heapAllocCount(), allocs0);
    EXPECT_EQ(pool.chunkCount(), chunks0);
}

TEST(Pool, ChunkGrowthIsVisibleToTheCensus)
{
    // Pool chunks come from the global operator new, so a pool that
    // grows in steady state cannot hide from the allocation count.
    Pool pool;
    PoolVec<std::uint64_t> v{PoolAlloc<std::uint64_t>(&pool)};
    const std::uint64_t allocs0 = heapAllocCount();
    v.reserve(1024);
    EXPECT_GT(heapAllocCount(), allocs0);
    EXPECT_GE(pool.chunkCount(), 1u);
}

TEST(PoolAlloc, NullPoolFallsBackToHeap)
{
    PoolMap<int, int> m; // default-constructed allocator, no pool
    for (int i = 0; i < 100; ++i)
        m.emplace(i, i);
    EXPECT_EQ(m.size(), 100u);
}

TEST(GsfBarrier, NoRehashOrAllocationUnderFrameChurn)
{
    GsfBarrier barrier(4, 8);
    Cycle now = 0;
    // Warm-up: one full cycle of admissions/ejections/advances.
    for (int round = 0; round < 100; ++round) {
        barrier.onPacketAdmitted(barrier.headFrame(), 4);
        for (int f = 0; f < 4; ++f)
            barrier.onFlitEjected(barrier.headFrame());
        for (int t = 0; t < 12; ++t)
            barrier.tick(now++);
    }
    const std::size_t buckets0 = barrier.inFlightBucketCount();
    const std::uint64_t allocs0 = heapAllocCount();
    for (int round = 0; round < 2000; ++round) {
        barrier.onPacketAdmitted(barrier.headFrame(), 4);
        barrier.onPacketAdmitted(barrier.newestFrame(), 2);
        for (int f = 0; f < 4; ++f)
            barrier.onFlitEjected(barrier.headFrame());
        for (int f = 0; f < 2; ++f)
            barrier.onFlitEjected(barrier.newestFrame());
        for (int t = 0; t < 12; ++t)
            barrier.tick(now++);
    }
    EXPECT_EQ(barrier.inFlightBucketCount(), buckets0);
    EXPECT_EQ(heapAllocCount(), allocs0);
}

// ---- ScalePayload: full-width payload mix regressions ---------------

TEST(ScalePayload, OldShiftCollidersAreDistinct)
{
    // The pre-fix payload was (flow << 40) ^ flitNo, so these pairs
    // collided exactly. The mixed payload must keep them apart.
    EXPECT_NE(flitPayload(1, 0), flitPayload(0, std::uint64_t(1) << 40));
    EXPECT_NE(flitPayload(3, 7),
              flitPayload(0, (std::uint64_t(3) << 40) ^ 7));
}

TEST(ScalePayload, LargeFlowIdsDoNotAlias)
{
    // flow << 40 in 64 bits truncated flow ids at 2^24: flow and
    // flow + 2^24 produced identical payload streams.
    const FlowId small = 5;
    const FlowId large = (FlowId(1) << 24) + 5;
    for (std::uint64_t n = 0; n < 64; ++n)
        ASSERT_NE(flitPayload(small, n), flitPayload(large, n))
            << "flit " << n;
}

TEST(ScalePayload, NoCollisionsAcrossWideSample)
{
    // Flows up to 2^31 and flit numbers up to 2^44: every payload in
    // the sample must be unique (the end-to-end corruption check
    // depends on payload mismatches being meaningful).
    std::set<std::uint64_t> seen;
    const FlowId flow_probes[] = {0, 1, 255, (FlowId(1) << 24) - 1,
                                  FlowId(1) << 24, (FlowId(1) << 31) + 3};
    for (const FlowId f : flow_probes) {
        for (std::uint64_t n = 0; n < 512; ++n) {
            const std::uint64_t base =
                n < 256 ? n : (std::uint64_t(1) << 44) + n;
            ASSERT_TRUE(seen.insert(flitPayload(f, base)).second)
                << "collision at flow " << f << " flit " << base;
        }
    }
}

// ---- End-to-end: zero heap allocations in the measurement phase -----

RunConfig
steadyConfig(NetKind kind)
{
    RunConfig c;
    c.kind = kind;
    c.meshWidth = 8;
    c.meshHeight = 8;
    // The warm-up run is the allocation ramp (pool spawn, ring
    // high-water growth, bucket arrays); it must be long enough for
    // every container to reach its plateau. The runs are deterministic,
    // so this is not a tuning knob that can flake.
    c.warmupCycles = 4000;
    c.measureCycles = 3000;
    c.audit = false;
    c.loft.frameSizeFlits = 256;
    c.loft.centralBufferFlits = 256;
    c.loft.specBufferFlits = 16;
    c.loft.maxFlows = 64;
    c.loft.sourceQueueFlits = 64;
    return c;
}

void
expectZeroSteadyAllocs(NetKind kind)
{
    const RunConfig cfg = steadyConfig(kind);
    Mesh2D mesh(cfg.meshWidth, cfg.meshHeight);
    TrafficPattern pattern = uniformPattern(mesh);
    setEqualSharesByMaxFlows(pattern.flows, cfg.loft.maxFlows);
    const RunResult r = runExperiment(cfg, pattern, 0.05);
    ASSERT_GT(r.totalPackets, 0u);
    EXPECT_EQ(r.steadyStateHeapAllocs, 0u)
        << "measurement phase allocated on the heap";
}

TEST(SteadyState, LoftMeasurePhaseIsAllocationFree)
{
    expectZeroSteadyAllocs(NetKind::Loft);
}

TEST(SteadyState, GsfMeasurePhaseIsAllocationFree)
{
    expectZeroSteadyAllocs(NetKind::Gsf);
}

TEST(SteadyState, WormholeMeasurePhaseIsAllocationFree)
{
    expectZeroSteadyAllocs(NetKind::Wormhole);
}

} // namespace
} // namespace noc
