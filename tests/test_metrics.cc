/**
 * @file
 * Unit tests for the metrics collector.
 */

#include <gtest/gtest.h>

#include "net/metrics.hh"

namespace noc
{
namespace
{

TEST(Metrics, IgnoresEventsOutsideWindow)
{
    MetricsCollector m(2);
    m.onFlitEjected(0);
    m.onPacketEjected(0, 0, 10);
    EXPECT_EQ(m.totalFlits(), 0u);
    m.startMeasurement(100);
    m.onFlitEjected(0);
    m.stopMeasurement(200);
    m.onFlitEjected(0);
    EXPECT_EQ(m.totalFlits(), 1u);
}

TEST(Metrics, ThroughputAccounting)
{
    MetricsCollector m(2);
    m.startMeasurement(0);
    for (int i = 0; i < 50; ++i)
        m.onFlitEjected(0);
    for (int i = 0; i < 25; ++i)
        m.onFlitEjected(1);
    m.stopMeasurement(100);
    EXPECT_DOUBLE_EQ(m.flowThroughput(0), 0.5);
    EXPECT_DOUBLE_EQ(m.flowThroughput(1), 0.25);
    EXPECT_DOUBLE_EQ(m.networkThroughput(3), 0.25);
}

TEST(Metrics, LatencyAccounting)
{
    MetricsCollector m(1);
    m.startMeasurement(0);
    m.onPacketEjected(0, 10, 30);
    m.onPacketEjected(0, 20, 60);
    m.stopMeasurement(100);
    EXPECT_DOUBLE_EQ(m.avgPacketLatency(), 30.0);
    EXPECT_DOUBLE_EQ(m.maxPacketLatency(), 40.0);
    EXPECT_EQ(m.totalPackets(), 2u);
    EXPECT_DOUBLE_EQ(m.flow(0).packetLatency.mean(), 30.0);
}

TEST(Metrics, StartClearsPrevious)
{
    MetricsCollector m(1);
    m.startMeasurement(0);
    m.onFlitEjected(0);
    m.stopMeasurement(10);
    m.startMeasurement(20);
    m.stopMeasurement(30);
    EXPECT_EQ(m.totalFlits(), 0u);
    EXPECT_EQ(m.windowCycles(), 10u);
}

TEST(Metrics, OutOfRangeFlowPanics)
{
    MetricsCollector m(1);
    m.startMeasurement(0);
    EXPECT_DEATH(m.onFlitEjected(5), "out of range");
}

} // namespace
} // namespace noc
