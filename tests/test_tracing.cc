/**
 * @file
 * Tests for the causal trace collector (src/trace): exact stage
 * decomposition on all three NetKinds, blame attribution, dump
 * determinism, summary consolidation, and the flight recorder.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "qos/allocation.hh"

namespace noc
{
namespace
{

RunConfig
tracedConfig(NetKind kind, std::uint64_t seed = 42)
{
    RunConfig c;
    c.kind = kind;
    c.meshWidth = 4;
    c.meshHeight = 4;
    c.warmupCycles = 500;
    c.measureCycles = 2500;
    c.seed = seed;
    c.loft.frameSizeFlits = 64;
    c.loft.centralBufferFlits = 64;
    c.loft.specBufferFlits = 8;
    c.loft.maxFlows = 16;
    c.loft.sourceQueueFlits = 32;
    c.gsf.frameSizeFlits = 200;
    c.gsf.sourceQueueFlits = 200;
    c.trace.enabled = true;
    c.trace.sampleRate = 1.0; // every packet becomes an exemplar
    return c;
}

TrafficPattern
flows(const Mesh2D &mesh)
{
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    return p;
}

class TraceKinds : public ::testing::TestWithParam<NetKind>
{
};

TEST_P(TraceKinds, StageDecompositionSumsExactly)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";
    Mesh2D mesh(4, 4);
    const RunResult r =
        runExperiment(tracedConfig(GetParam()), flows(mesh), 0.15);
    ASSERT_NE(r.trace, nullptr);
    const TraceSummary &s = r.traceSummary;
    ASSERT_TRUE(s.enabled);
    EXPECT_GT(s.packetsTraced, 0u);
    // Every traced packet's stages summed EXACTLY to its measured
    // latency; a single off-by-one anywhere trips this.
    EXPECT_EQ(s.decompositionMismatches, 0u);
    // ... so the aggregate identity holds too: additive stages minus
    // the speculative savings equal the summed end-to-end latency.
    std::uint64_t additive = 0;
    for (std::size_t i = 0; i < kNumTraceStages; ++i) {
        if (static_cast<TraceStage>(i) != TraceStage::SpecSavings)
            additive += s.stageCycles[i];
    }
    EXPECT_EQ(additive -
                  s.stageCycles[static_cast<std::size_t>(
                      TraceStage::SpecSavings)],
              s.totalLatencyCycles);
    // sampleRate = 1.0: every delivered packet was sampled.
    EXPECT_EQ(s.packetsSampled, s.packetsTraced);
}

TEST_P(TraceKinds, DumpJsonIsWellFormedAndDeterministic)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";
    Mesh2D mesh(4, 4);
    const RunConfig c = tracedConfig(GetParam());
    const RunResult a = runExperiment(c, flows(mesh), 0.15);
    const RunResult b = runExperiment(c, flows(mesh), 0.15);
    ASSERT_NE(a.trace, nullptr);
    ASSERT_NE(b.trace, nullptr);
    const std::string da = a.trace->dumpJson("test", 3000);
    EXPECT_EQ(da, b.trace->dumpJson("test", 3000));
    EXPECT_NE(da.find("\"schema\":\"loft-trace-dump/1\""),
              std::string::npos);
    EXPECT_NE(da.find("\"exemplars\":["), std::string::npos);
    EXPECT_NE(da.find("\"flight\":["), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Kinds, TraceKinds,
                         ::testing::Values(NetKind::Loft, NetKind::Gsf,
                                           NetKind::Wormhole));

TEST(Tracing, LoftUsesReservationStages)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";
    Mesh2D mesh(4, 4);
    const RunResult r = runExperiment(tracedConfig(NetKind::Loft),
                                      flows(mesh), 0.15);
    const TraceSummary &s = r.traceSummary;
    // LOFT decisions come from the look-ahead protocol: the NI grant
    // splits the source wait, and hop residency is not all "stall".
    EXPECT_GT(s.stageCycles[static_cast<std::size_t>(
                  TraceStage::SrcReservation)] +
                  s.stageCycles[static_cast<std::size_t>(
                      TraceStage::ReservationWait)] +
                  s.stageCycles[static_cast<std::size_t>(
                      TraceStage::SpecSavings)],
              0u);
    EXPECT_GT(s.stageCycles[static_cast<std::size_t>(TraceStage::Link)],
              0u);
}

TEST(Tracing, ContentionProducesBlame)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";
    Mesh2D mesh(4, 4);
    TrafficPattern p = hotspotPattern(mesh, 15);
    setEqualSharesByMaxFlows(p.flows, 16);
    const RunResult r = runExperiment(
        tracedConfig(NetKind::Wormhole), p, 0.4);
    const TraceSummary &s = r.traceSummary;
    // 15 flows hammering one sink: stall cycles exist and most are
    // attributable to a specific competing flow.
    EXPECT_GT(s.blameAttributed, 0u);
    ASSERT_FALSE(s.topInterference.empty());
    const TraceInterference &top = s.topInterference.front();
    EXPECT_NE(top.victim, top.aggressor);
    EXPECT_GT(top.cycles, 0u);
    // Descending order.
    for (std::size_t i = 1; i < s.topInterference.size(); ++i)
        EXPECT_GE(s.topInterference[i - 1].cycles,
                  s.topInterference[i].cycles);
}

TEST(Tracing, SamplingBoundsExemplarsButNotAggregates)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";
    Mesh2D mesh(4, 4);
    RunConfig c = tracedConfig(NetKind::Loft);
    c.trace.sampleRate = 0.0;
    c.trace.tailExemplars = 4;
    const RunResult r = runExperiment(c, flows(mesh), 0.15);
    const TraceSummary &s = r.traceSummary;
    EXPECT_GT(s.packetsTraced, 0u);   // aggregates cover every packet
    EXPECT_EQ(s.packetsSampled, 0u);  // no sampled exemplars
    EXPECT_EQ(s.decompositionMismatches, 0u);
    // Only the tail set remains in the dump.
    const std::string dump = r.trace->dumpJson("test", 3000);
    EXPECT_NE(dump.find("\"tail\":true"), std::string::npos);
    EXPECT_EQ(dump.find("\"tail\":false"), std::string::npos);
}

TEST(Tracing, MergeTraceSummariesIsAdditive)
{
    TraceSummary a;
    a.enabled = true;
    a.packetsTraced = 3;
    a.totalLatencyCycles = 30;
    a.stageCycles[0] = 30;
    a.blameAttributed = 5;
    a.topInterference.push_back(TraceInterference{1, 2, 5});
    TraceSummary b = a;
    b.packetsTraced = 2;
    b.topInterference.push_back(TraceInterference{1, 3, 9});

    const TraceSummary m = mergeTraceSummaries({a, b});
    EXPECT_TRUE(m.enabled);
    EXPECT_EQ(m.packetsTraced, 5u);
    EXPECT_EQ(m.totalLatencyCycles, 60u);
    EXPECT_EQ(m.stageCycles[0], 60u);
    EXPECT_EQ(m.blameAttributed, 10u);
    ASSERT_EQ(m.topInterference.size(), 2u);
    EXPECT_EQ(m.topInterference[0].cycles, 10u); // 1<-2: 5+5
    EXPECT_EQ(m.topInterference[1].cycles, 9u);  // 1<-3: once

    const TraceSummary none = mergeTraceSummaries({});
    EXPECT_FALSE(none.enabled);
}

TEST(Tracing, DisabledConfigAttachesNoCollector)
{
    Mesh2D mesh(4, 4);
    RunConfig c = tracedConfig(NetKind::Loft);
    c.trace.enabled = false;
    const RunResult r = runExperiment(c, flows(mesh), 0.15);
    EXPECT_EQ(r.trace, nullptr);
    EXPECT_FALSE(r.traceSummary.enabled);
}

TEST(Tracing, SweepConsolidationMergesTracedCases)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";
    SweepConfig sc;
    sc.base = tracedConfig(NetKind::Loft);
    sc.seeds = {1, 2};
    sc.loads = {0.15};
    const SweepResults res = runSweep(sc, [](const SweepCase &c) {
        Mesh2D mesh(c.config.meshWidth, c.config.meshHeight);
        return runExperiment(c.config, flows(mesh), c.load);
    });
    ASSERT_EQ(res.results.size(), 2u);
    const TraceSummary m = consolidateTraceSummaries(res);
    EXPECT_TRUE(m.enabled);
    EXPECT_EQ(m.packetsTraced,
              res.results[0].traceSummary.packetsTraced +
                  res.results[1].traceSummary.packetsTraced);
    EXPECT_EQ(m.decompositionMismatches, 0u);
}

TEST(Tracing, SpanExportMergesWithTelemetry)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";
    Mesh2D mesh(4, 4);
    RunConfig c = tracedConfig(NetKind::Loft);
    c.telemetry.enabled = true;
    c.telemetry.epochCycles = 500;
    const RunResult r = runExperiment(c, flows(mesh), 0.15);
    ASSERT_NE(r.telemetry, nullptr);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_GT(r.trace->spanWriter().size(), 0u);
    const std::string merged = chromeTraceJson(
        {&r.telemetry->traceWriter(), &r.trace->spanWriter()},
        c.meshWidth, c.meshHeight);
    // One loadable document containing both processes.
    EXPECT_NE(merged.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(merged.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(merged.find("\"cat\":\"stage\""), std::string::npos);
}

} // namespace
} // namespace noc
