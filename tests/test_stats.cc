/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

namespace noc
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat rs;
    rs.sample(7.0);
    EXPECT_EQ(rs.count(), 1u);
    EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 7.0);
    EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat rs;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.sample(x);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 2.0); // classic population example
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).sample(x);
        all.sample(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.sample(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // [0,40) + overflow
    h.sample(0.0);
    h.sample(9.9);
    h.sample(10.0);
    h.sample(39.9);
    h.sample(40.0);
    h.sample(1000.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_LE(h.percentile(0.1), h.percentile(0.5));
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(1.0, 4);
    h.sample(2.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Fairness, EmptyInput)
{
    const FairnessSummary s = summarizeFairness({});
    EXPECT_DOUBLE_EQ(s.avg, 0.0);
    EXPECT_DOUBLE_EQ(s.jain, 0.0);
}

TEST(Fairness, PerfectlyFair)
{
    const FairnessSummary s = summarizeFairness({2.0, 2.0, 2.0, 2.0});
    EXPECT_DOUBLE_EQ(s.max, 2.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.avg, 2.0);
    EXPECT_DOUBLE_EQ(s.rsd, 0.0);
    EXPECT_DOUBLE_EQ(s.jain, 1.0);
}

TEST(Fairness, TotallyUnfair)
{
    const FairnessSummary s = summarizeFairness({4.0, 0.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(s.jain, 0.25); // Jain index = 1/n for one winner
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.min, 0.0);
}

} // namespace
} // namespace noc
