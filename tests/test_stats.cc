/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "sim/stats.hh"

namespace noc
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat rs;
    rs.sample(7.0);
    EXPECT_EQ(rs.count(), 1u);
    EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 7.0);
    EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat rs;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.sample(x);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 2.0); // classic population example
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).sample(x);
        all.sample(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.sample(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // [0,40) + overflow
    h.sample(0.0);
    h.sample(9.9);
    h.sample(10.0);
    h.sample(39.9);
    h.sample(40.0);
    h.sample(1000.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, HugeAndNonFiniteSamplesLandInOverflow)
{
    // Regression: the bucket index was computed by casting x / width to
    // size_t before the range check — UB for samples whose quotient
    // exceeds size_t (huge values, inf) and for NaN. All of them must
    // land in the overflow bucket instead.
    Histogram h(10.0, 4);
    h.sample(1e300);
    h.sample(static_cast<double>(UINT64_MAX) * 20.0);
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.overflow(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(h.bucket(i), 0u);

    // Ordinary samples keep working alongside.
    h.sample(15.0);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.overflow(), 4u);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_LE(h.percentile(0.1), h.percentile(0.5));
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(1.0, 4);
    h.sample(2.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(LogHistogram, ExactBucketBoundaries)
{
    // lo=1, hi=16, 4 buckets: bounds 1, 2, 4, 8, 16 (powers of two).
    LogHistogram h(1.0, 16.0, 4);
    ASSERT_EQ(h.numBuckets(), 4u);
    EXPECT_DOUBLE_EQ(h.bound(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bound(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bound(2), 4.0);
    EXPECT_DOUBLE_EQ(h.bound(3), 8.0);
    EXPECT_DOUBLE_EQ(h.bound(4), 16.0);

    // Bucket i covers [bound(i), bound(i+1)); hi goes to overflow.
    h.sample(1.0);
    h.sample(1.999);
    h.sample(2.0);
    h.sample(7.999);
    h.sample(8.0);
    h.sample(15.999);
    h.sample(16.0);
    h.sample(1e9);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 8u);
}

TEST(LogHistogram, BelowRangeLandsInBucketZero)
{
    LogHistogram h(10.0, 1000.0, 2);
    h.sample(0.5);
    h.sample(9.999);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.minSample(), 0.5);
}

TEST(LogHistogram, PercentileInterpolation)
{
    // 100 samples spread uniformly inside one bucket [4, 8): the
    // percentile must interpolate linearly across that bucket.
    LogHistogram h(1.0, 16.0, 4);
    for (int i = 0; i < 100; ++i)
        h.sample(4.0 + 4.0 * i / 100.0);
    // p=0.5 -> target 50 of 100 in a bucket spanning [4, 8).
    EXPECT_NEAR(h.percentile(0.5), 6.0, 0.1);
    EXPECT_NEAR(h.percentile(0.25), 5.0, 0.1);
    // Extremes are exact: clamped to the observed sample range.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), h.maxSample());
}

TEST(LogHistogram, PercentileMonotonicOnLongTail)
{
    LogHistogram h(1.0, 1 << 20, 160);
    // Geometric long-tail: most samples small, a few huge.
    for (int i = 0; i < 1000; ++i)
        h.sample(10.0 + (i % 7));
    for (int i = 0; i < 10; ++i)
        h.sample(50000.0 + 1000.0 * i);
    double prev = 0.0;
    for (double p : {0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const double v = h.percentile(p);
        EXPECT_GE(v, prev) << "p=" << p;
        prev = v;
    }
    EXPECT_NEAR(h.percentile(0.5), 13.0, 1.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 59000.0);
}

TEST(LogHistogram, OverflowPercentileReportsMax)
{
    LogHistogram h(1.0, 4.0, 2);
    h.sample(2.0);
    h.sample(100.0);
    h.sample(200.0);
    // p99 falls in the overflow bucket: report the exact max sample.
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 200.0);
}

TEST(LogHistogram, MeanMinMaxAndReset)
{
    LogHistogram h(1.0, 1024.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // empty
    h.sample(2.0);
    h.sample(6.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_DOUBLE_EQ(h.minSample(), 2.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 6.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 0.0);
}

TEST(LogHistogram, MergeMatchesCombined)
{
    LogHistogram a(1.0, 1024.0, 20);
    LogHistogram b(1.0, 1024.0, 20);
    LogHistogram both(1.0, 1024.0, 20);
    for (double x : {3.0, 17.0, 200.0}) {
        a.sample(x);
        both.sample(x);
    }
    for (double x : {1.5, 900.0, 5000.0}) {
        b.sample(x);
        both.sample(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.overflow(), both.overflow());
    EXPECT_DOUBLE_EQ(a.mean(), both.mean());
    EXPECT_DOUBLE_EQ(a.minSample(), both.minSample());
    EXPECT_DOUBLE_EQ(a.maxSample(), both.maxSample());
    for (std::size_t i = 0; i < a.numBuckets(); ++i)
        EXPECT_EQ(a.bucket(i), both.bucket(i)) << "bucket " << i;
    EXPECT_DOUBLE_EQ(a.percentile(0.9), both.percentile(0.9));
}

TEST(Fairness, EmptyInput)
{
    const FairnessSummary s = summarizeFairness({});
    EXPECT_DOUBLE_EQ(s.avg, 0.0);
    EXPECT_DOUBLE_EQ(s.jain, 0.0);
}

TEST(Fairness, PerfectlyFair)
{
    const FairnessSummary s = summarizeFairness({2.0, 2.0, 2.0, 2.0});
    EXPECT_DOUBLE_EQ(s.max, 2.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.avg, 2.0);
    EXPECT_DOUBLE_EQ(s.rsd, 0.0);
    EXPECT_DOUBLE_EQ(s.jain, 1.0);
}

TEST(Fairness, TotallyUnfair)
{
    const FairnessSummary s = summarizeFairness({4.0, 0.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(s.jain, 0.25); // Jain index = 1/n for one winner
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.min, 0.0);
}

} // namespace
} // namespace noc
