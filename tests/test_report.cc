/**
 * @file
 * Unit tests for the report tables (text / CSV / JSON rendering).
 */

#include <gtest/gtest.h>

#include "sim/report.hh"

namespace noc
{
namespace
{

ReportTable
sample()
{
    ReportTable t("demo", {"name", "count", "ratio"});
    t.addRow({std::string("alpha"), std::int64_t{3}, 0.5});
    t.addRow({std::string("beta"), std::int64_t{-1}, 1.25});
    return t;
}

TEST(Report, Shape)
{
    const ReportTable t = sample();
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numColumns(), 3u);
    EXPECT_EQ(std::get<std::string>(t.at(0, 0)), "alpha");
    EXPECT_EQ(std::get<std::int64_t>(t.at(1, 1)), -1);
}

TEST(Report, RowArityEnforced)
{
    ReportTable t("x", {"a", "b"});
    EXPECT_EXIT(t.addRow({std::string("only-one")}),
                ::testing::ExitedWithCode(1), "expected 2");
}

TEST(Report, TextContainsAlignedColumns)
{
    const std::string text = sample().toText();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("ratio"), std::string::npos);
    EXPECT_NE(text.find("1.25"), std::string::npos);
}

TEST(Report, CsvRoundTrip)
{
    const std::string csv = sample().toCsv();
    EXPECT_EQ(csv, "name,count,ratio\nalpha,3,0.5\nbeta,-1,1.25\n");
}

TEST(Report, CsvEscaping)
{
    ReportTable t("q", {"v"});
    t.addRow({std::string("a,b")});
    t.addRow({std::string("say \"hi\"")});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Report, JsonWellFormed)
{
    const std::string json = sample().toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"title\":\"demo\""), std::string::npos);
    EXPECT_NE(json.find("[\"alpha\",3,0.5]"), std::string::npos);
}

TEST(Report, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, UnknownFormatIsFatal)
{
    const ReportTable t = sample();
    EXPECT_EXIT(t.write(stdout, "xml"), ::testing::ExitedWithCode(1),
                "unknown format");
}

TEST(Report, EmptyColumnsFatal)
{
    EXPECT_EXIT(ReportTable("t", {}), ::testing::ExitedWithCode(1),
                "at least one column");
}

} // namespace
} // namespace noc
