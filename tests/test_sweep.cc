/**
 * @file
 * Sweep-engine tests: the cartesian expansion, and the engine's core
 * guarantee that a parallel sweep is bit-identical to a serial one —
 * metrics, telemetry exports and audit cleanliness — for all three
 * network architectures. Also covers the active-set scheduler the
 * engine's throughput rests on: idle networks must go fully quiescent
 * (GSF excepted: its frame barrier is time-driven) and wake back up
 * for traffic.
 */

#include <gtest/gtest.h>

#include "harness/sweep.hh"
#include "qos/allocation.hh"

namespace noc
{
namespace
{

RunConfig
smallConfig(NetKind kind)
{
    RunConfig c;
    c.kind = kind;
    c.meshWidth = 4;
    c.meshHeight = 4;
    c.warmupCycles = 1000;
    c.measureCycles = 2500;
    c.loft.frameSizeFlits = 64;
    c.loft.centralBufferFlits = 64;
    c.loft.specBufferFlits = 8;
    c.loft.maxFlows = 16;
    c.loft.sourceQueueFlits = 32;
    return c;
}

TrafficPattern
smallPattern()
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    return p;
}

/// ---------------------------------------------------------------
/// Expansion.
/// ---------------------------------------------------------------

TEST(SweepExpansion, CartesianProductInSubmissionOrder)
{
    SweepConfig sc;
    sc.base = smallConfig(NetKind::Loft);
    sc.kinds = {NetKind::Loft, NetKind::Wormhole};
    sc.loads = {0.1, 0.2};
    sc.seeds = {7, 8};
    sc.overrides.push_back({"spec=0", [](RunConfig &c) {
                                c.loft.specBufferFlits = 0;
                            }});
    sc.overrides.push_back({"spec=8", nullptr});

    const std::vector<SweepCase> cases = expandSweep(sc);
    ASSERT_EQ(cases.size(), 16u);
    // Kinds outermost, then overrides, loads, seeds innermost.
    EXPECT_EQ(cases[0].kind, NetKind::Loft);
    EXPECT_EQ(cases[0].overrideLabel, "spec=0");
    EXPECT_EQ(cases[0].load, 0.1);
    EXPECT_EQ(cases[0].seed, 7u);
    EXPECT_EQ(cases[1].seed, 8u);
    EXPECT_EQ(cases[2].load, 0.2);
    EXPECT_EQ(cases[4].overrideLabel, "spec=8");
    EXPECT_EQ(cases[8].kind, NetKind::Wormhole);
    for (std::size_t i = 0; i < cases.size(); ++i) {
        EXPECT_EQ(cases[i].index, i);
        EXPECT_EQ(cases[i].config.kind, cases[i].kind);
        EXPECT_EQ(cases[i].config.seed, cases[i].seed);
    }
    // The override mutated the resolved config of its cases only.
    EXPECT_EQ(cases[0].config.loft.specBufferFlits, 0u);
    EXPECT_EQ(cases[4].config.loft.specBufferFlits, 8u);
}

TEST(SweepExpansion, EmptyAxesCollapseToTheBaseConfig)
{
    SweepConfig sc;
    sc.base = smallConfig(NetKind::Gsf);
    sc.base.seed = 99;
    const std::vector<SweepCase> cases = expandSweep(sc);
    ASSERT_EQ(cases.size(), 1u);
    EXPECT_EQ(cases[0].kind, NetKind::Gsf);
    EXPECT_EQ(cases[0].seed, 99u);
    EXPECT_EQ(cases[0].load, 0.0);
    EXPECT_EQ(cases[0].overrideLabel, "");
}

/// ---------------------------------------------------------------
/// Parallel == serial, bit for bit, per network architecture.
/// ---------------------------------------------------------------

SweepConfig
identitySweep(NetKind kind, unsigned threads)
{
    SweepConfig sc;
    sc.base = smallConfig(kind);
    sc.base.telemetry.enabled = true;
    sc.base.telemetry.epochCycles = 500;
    sc.loads = {0.05, 0.1, 0.2};
    sc.seeds = {1, 2, 3};
    sc.threads = threads;
    return sc;
}

class ParallelIdentity : public ::testing::TestWithParam<NetKind>
{
};

TEST_P(ParallelIdentity, ParallelSweepIsBitIdenticalToSerial)
{
    const TrafficPattern p = smallPattern();
    const auto factory = [&](const SweepCase &) { return p; };

    const SweepResults serial =
        runSweep(identitySweep(GetParam(), 1), factory);
    const SweepResults parallel =
        runSweep(identitySweep(GetParam(), 4), factory);

    ASSERT_EQ(serial.results.size(), 9u);
    ASSERT_EQ(parallel.results.size(), 9u);
    EXPECT_EQ(serial.summary.threadsUsed, 1u);
    EXPECT_EQ(parallel.summary.threadsUsed, 4u);

    // Metrics, bit for bit (hexfloat), across the whole sweep.
    EXPECT_EQ(sweepFingerprint(serial), sweepFingerprint(parallel));

    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        const RunResult &a = serial.results[i];
        const RunResult &b = parallel.results[i];
        EXPECT_GT(a.totalFlits, 0u) << "case " << i;

        // Audit cleanliness, in both execution modes.
        EXPECT_EQ(a.auditHardViolations, 0u) << a.auditReport;
        EXPECT_EQ(b.auditHardViolations, 0u) << b.auditReport;
        EXPECT_EQ(a.auditWatchdogs, 0u) << a.auditReport;
        EXPECT_EQ(b.auditWatchdogs, 0u) << b.auditReport;

        // Telemetry exports, byte for byte (collectors exist only
        // when the instrumentation hooks are compiled in).
        ASSERT_EQ(a.telemetry == nullptr, b.telemetry == nullptr);
        if (a.telemetry) {
            EXPECT_EQ(a.telemetry->timeSeriesCsv(),
                      b.telemetry->timeSeriesCsv());
            EXPECT_EQ(a.telemetry->chromeTraceJson(),
                      b.telemetry->chromeTraceJson());
            EXPECT_EQ(a.telemetry->heatmapCsv(),
                      b.telemetry->heatmapCsv());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Networks, ParallelIdentity,
                         ::testing::Values(NetKind::Loft, NetKind::Gsf,
                                           NetKind::Wormhole));

/// ---------------------------------------------------------------
/// Quiescence: idle networks sleep, traffic wakes them, drained
/// networks go back to sleep.
/// ---------------------------------------------------------------

FlowSpec
oneHopFlow()
{
    FlowSpec f;
    f.id = 0;
    f.src = 0;
    f.dst = 5;
    f.bwShare = 1.0 / 16;
    return f;
}

Packet
onePacket()
{
    Packet p;
    p.id = 1;
    p.flow = 0;
    p.src = 0;
    p.dst = 5;
    p.sizeFlits = 4;
    return p;
}

TEST(Quiescence, IdleLoftNetworkIsFullyQuiescent)
{
    const RunConfig c = smallConfig(NetKind::Loft);
    Mesh2D mesh(4, 4);
    auto net = buildNetwork(c, mesh);
    net->registerFlows({oneHopFlow()});
    Simulator sim;
    net->attach(sim);

    EXPECT_EQ(sim.activeComponents(), 0u);
    sim.run(200);
    EXPECT_EQ(sim.ticksExecuted(), 0u);
    EXPECT_EQ(sim.ticksSkipped(), 200u * sim.numComponents());
}

TEST(Quiescence, IdleGsfKeepsOnlyTheFrameBarrierActive)
{
    // GSF's barrier advances the frame window on a timer even with an
    // empty network (source quotas replenish on those advances), so
    // it must never be skipped.
    const RunConfig c = smallConfig(NetKind::Gsf);
    Mesh2D mesh(4, 4);
    auto net = buildNetwork(c, mesh);
    net->registerFlows({oneHopFlow()});
    Simulator sim;
    net->attach(sim);

    EXPECT_EQ(sim.activeComponents(), 1u);
    sim.run(200);
    EXPECT_EQ(sim.ticksExecuted(), 200u);
}

class DrainsBackToQuiescence : public ::testing::TestWithParam<NetKind>
{
};

TEST_P(DrainsBackToQuiescence, AfterDeliveringAPacket)
{
    const RunConfig c = smallConfig(GetParam());
    Mesh2D mesh(4, 4);
    auto net = buildNetwork(c, mesh);
    net->registerFlows({oneHopFlow()});
    Simulator sim;
    net->attach(sim);
    net->metrics().startMeasurement(0);

    ASSERT_TRUE(net->inject(onePacket()));
    EXPECT_GT(sim.activeComponents(), 0u);

    ASSERT_TRUE(sim.runUntil(
        [&] {
            return net->metrics().totalPackets() == 1 &&
                   net->flitsInFlight() == 0;
        },
        20000));

    // LOFT needs a few idle cycles more: the schedulers go quiescent
    // only after their local status reset has run.
    const std::size_t floor = GetParam() == NetKind::Gsf ? 1u : 0u;
    EXPECT_TRUE(sim.runUntil(
        [&] { return sim.activeComponents() == floor; }, 20000));
    EXPECT_EQ(net->metrics().totalPackets(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Networks, DrainsBackToQuiescence,
                         ::testing::Values(NetKind::Loft, NetKind::Gsf,
                                           NetKind::Wormhole));

} // namespace
} // namespace noc
