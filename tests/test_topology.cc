/**
 * @file
 * Unit tests for the 2-D mesh topology.
 */

#include <gtest/gtest.h>

#include "net/topology.hh"

namespace noc
{
namespace
{

TEST(Topology, NodeNumberingMatchesPaper)
{
    // Node id = x + y * 8 on the 8x8 mesh (Section 5.1).
    Mesh2D m(8, 8);
    EXPECT_EQ(m.nodeAt(0, 0), 0u);
    EXPECT_EQ(m.nodeAt(7, 0), 7u);
    EXPECT_EQ(m.nodeAt(0, 6), 48u);
    EXPECT_EQ(m.nodeAt(7, 7), 63u);
    EXPECT_EQ(m.xOf(63), 7u);
    EXPECT_EQ(m.yOf(63), 7u);
}

TEST(Topology, NeighborsAndEdges)
{
    Mesh2D m(4, 4);
    EXPECT_FALSE(m.hasNeighbor(0, Port::West));
    EXPECT_FALSE(m.hasNeighbor(0, Port::South));
    EXPECT_TRUE(m.hasNeighbor(0, Port::East));
    EXPECT_TRUE(m.hasNeighbor(0, Port::North));
    EXPECT_EQ(m.neighbor(0, Port::East), 1u);
    EXPECT_EQ(m.neighbor(0, Port::North), 4u);
    EXPECT_EQ(m.neighbor(5, Port::South), 1u);
    EXPECT_EQ(m.neighbor(5, Port::West), 4u);
    EXPECT_FALSE(m.hasNeighbor(15, Port::East));
    EXPECT_FALSE(m.hasNeighbor(15, Port::North));
}

TEST(Topology, NeighborIsSymmetric)
{
    Mesh2D m(5, 3);
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        for (Port p : {Port::North, Port::East, Port::South, Port::West}) {
            if (!m.hasNeighbor(n, p))
                continue;
            const NodeId nb = m.neighbor(n, p);
            EXPECT_EQ(m.neighbor(nb, oppositePort(p)), n);
        }
    }
}

TEST(Topology, HopDistance)
{
    Mesh2D m(8, 8);
    EXPECT_EQ(m.hopDistance(0, 0), 0u);
    EXPECT_EQ(m.hopDistance(0, 7), 7u);
    EXPECT_EQ(m.hopDistance(0, 63), 14u);
    EXPECT_EQ(m.hopDistance(63, 0), 14u);
    EXPECT_EQ(m.hopDistance(9, 18), 2u);
}

TEST(Topology, CenterNode)
{
    EXPECT_EQ(Mesh2D(8, 8).centerNode(), 36u);
    EXPECT_EQ(Mesh2D(3, 3).centerNode(), 4u);
}

TEST(Topology, NearestNeighborAdjacent)
{
    Mesh2D m(8, 8);
    for (NodeId n = 0; n < m.numNodes(); ++n)
        EXPECT_EQ(m.hopDistance(n, m.nearestNeighbor(n)), 1u);
}

TEST(Topology, OppositePorts)
{
    EXPECT_EQ(oppositePort(Port::North), Port::South);
    EXPECT_EQ(oppositePort(Port::East), Port::West);
    EXPECT_EQ(oppositePort(Port::South), Port::North);
    EXPECT_EQ(oppositePort(Port::West), Port::East);
    EXPECT_EQ(oppositePort(Port::Local), Port::Local);
}

TEST(Topology, ZeroSizeRejected)
{
    EXPECT_EXIT(Mesh2D(0, 4), ::testing::ExitedWithCode(1), "positive");
}

TEST(Topology, LargeMesh64x64)
{
    // 4096 nodes: ids, coordinates and routing must hold at the
    // largest supported scale (bench_scale's top size) without any
    // narrow-integer truncation.
    Mesh2D m(64, 64);
    EXPECT_EQ(m.numNodes(), 4096u);
    EXPECT_EQ(m.nodeAt(0, 0), 0u);
    EXPECT_EQ(m.nodeAt(63, 0), 63u);
    EXPECT_EQ(m.nodeAt(0, 63), 4032u);
    EXPECT_EQ(m.nodeAt(63, 63), 4095u);
    EXPECT_EQ(m.xOf(4095), 63u);
    EXPECT_EQ(m.yOf(4095), 63u);
    EXPECT_EQ(m.xOf(4032), 0u);
    EXPECT_EQ(m.yOf(4032), 63u);
    EXPECT_EQ(m.hopDistance(0, 4095), 126u);
    EXPECT_EQ(m.hopDistance(4095, 0), 126u);

    // Corner adjacency, and id/coordinate round trip on a sample
    // (every 97th node covers all rows and columns).
    EXPECT_FALSE(m.hasNeighbor(4095, Port::East));
    EXPECT_FALSE(m.hasNeighbor(4095, Port::North));
    EXPECT_EQ(m.neighbor(4095, Port::West), 4094u);
    EXPECT_EQ(m.neighbor(4095, Port::South), 4031u);
    for (NodeId n = 0; n < m.numNodes(); n += 97) {
        EXPECT_EQ(m.nodeAt(m.xOf(n), m.yOf(n)), n);
        EXPECT_EQ(m.hopDistance(n, m.nearestNeighbor(n)), 1u);
    }
}

} // namespace
} // namespace noc
