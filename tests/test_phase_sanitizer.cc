/**
 * @file
 * PhaseSanitizer tests: deliberate violations of the three-phase
 * concurrency contract must abort with the (component, cycle, phase,
 * domain) report, the shims must be inert when disabled, and enabling
 * the sanitizer must not perturb a run's fingerprint at any worker
 * count (the shims only read simulation state).
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/sweep.hh"
#include "net/channel.hh"
#include "net/metrics.hh"
#include "qos/allocation.hh"
#include "sim/parallel.hh"
#include "sim/phase_sanitizer.hh"

namespace noc
{
namespace
{

RunConfig
smallConfig(NetKind kind)
{
    RunConfig c;
    c.kind = kind;
    c.meshWidth = 4;
    c.meshHeight = 4;
    c.warmupCycles = 400;
    c.measureCycles = 900;
    c.loft.frameSizeFlits = 64;
    c.loft.centralBufferFlits = 64;
    c.loft.specBufferFlits = 8;
    c.loft.maxFlows = 16;
    c.loft.sourceQueueFlits = 32;
    c.applyEnvScale();
    return c;
}

TrafficPattern
smallPattern()
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    return p;
}

/// ---------------------------------------------------------------
/// Deliberate contract violations: each must abort with the full
/// (component, cycle, phase, domain) attribution. All state is set
/// inside the death statement so only the forked child is poisoned.
/// ---------------------------------------------------------------

TEST(PhaseSanitizerDeathTest, FlushPendingInsidePartitionedPhaseAborts)
{
    if (!psan::kCompiledIn)
        GTEST_SKIP() << "audit layer compiled out (-DLOFT_AUDIT=OFF)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            psan::setEnabledForTest(1);
            Channel<int> ch;
            ch.setConcurrent(true);
            par::ctx().component = 7;
            par::ctx().domain = 2;
            LOFT_PSAN_SET_PHASE(SimPhase::Partitioned, 42);
            ch.flushPending(); // the PR-6 opportunistic local reset
        },
        "PhaseSanitizer: Channel::flushPending: barrier-owned seam "
        "entered from inside a simulation phase "
        "\\(component 7, cycle 42, phase partitioned, domain 2\\)");
}

TEST(PhaseSanitizerDeathTest, SendWhileBarrierPublishesAborts)
{
    if (!psan::kCompiledIn)
        GTEST_SKIP() << "audit layer compiled out (-DLOFT_AUDIT=OFF)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            psan::setEnabledForTest(1);
            Channel<int> ch;
            ch.setConcurrent(true);
            par::ctx().component = 3;
            LOFT_PSAN_SET_PHASE(SimPhase::Barrier, 9);
            ch.send(9, 1);
        },
        "PhaseSanitizer: Channel::send: send while the barrier "
        "publishes channel state "
        "\\(component 3, cycle 9, phase barrier,");
}

TEST(PhaseSanitizerDeathTest, MergeDomainsInsidePartitionedPhaseAborts)
{
    if (!psan::kCompiledIn)
        GTEST_SKIP() << "audit layer compiled out (-DLOFT_AUDIT=OFF)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            psan::setEnabledForTest(1);
            MetricsCollector mc(4);
            mc.beginParallel(2); // legal: still idle
            LOFT_PSAN_SET_PHASE(SimPhase::Partitioned, 11);
            mc.mergeDomains();
        },
        "PhaseSanitizer: MetricsCollector::mergeDomains: barrier-owned "
        "seam entered from inside a simulation phase");
}

TEST(PhaseSanitizerDeathTest, DirectDeliveryInsidePartitionedPhaseAborts)
{
    if (!psan::kCompiledIn)
        GTEST_SKIP() << "audit layer compiled out (-DLOFT_AUDIT=OFF)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A shared consumer whose hook takes the direct path while the
    // partitioned phase runs: exactly the PR-6 bug class at runtime.
    EXPECT_DEATH(
        {
            psan::setEnabledForTest(1);
            MetricsCollector mc(4);
            LOFT_PSAN_SET_PHASE(SimPhase::Partitioned, 5);
            mc.onFlitEjected(0); // no domain buffers -> direct path
        },
        "PhaseSanitizer: MetricsCollector::onFlitEjected: shared "
        "consumer state mutated directly from the partitioned phase");
}

TEST(PhaseSanitizerDeathTest, LeakedDomainContextAborts)
{
    if (!psan::kCompiledIn)
        GTEST_SKIP() << "audit layer compiled out (-DLOFT_AUDIT=OFF)";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A thread still claiming a domain after the partitioned phase
    // ended would keep buffering events the barrier already merged.
    EXPECT_DEATH(
        {
            psan::setEnabledForTest(1);
            MetricsCollector mc(4);
            mc.beginParallel(2);
            par::ctx().domain = 0;
            LOFT_PSAN_SET_PHASE(SimPhase::Epilogue, 13);
            mc.onFlitEjected(1);
        },
        "PhaseSanitizer: MetricsCollector::onFlitEjected: per-domain "
        "deferred buffering outside the partitioned phase "
        "\\(leaked domain context\\)");
}

/// ---------------------------------------------------------------
/// Gating: every shim sits behind the enable check, so a disabled
/// sanitizer never inspects (or aborts on) anything.
/// ---------------------------------------------------------------

TEST(PhaseSanitizer, DisabledShimsAreInert)
{
    if (!psan::kCompiledIn)
        GTEST_SKIP() << "audit layer compiled out (-DLOFT_AUDIT=OFF)";
    Channel<int> ch;
    ch.setConcurrent(true);
    psan::setEnabledForTest(1);
    LOFT_PSAN_SET_PHASE(SimPhase::Partitioned, 5);
    psan::setEnabledForTest(0);
    ch.flushPending(); // would abort if the shims ran
    // Restore: stamp Idle (needs the gate open), then fall back to
    // the environment verdict.
    psan::setEnabledForTest(1);
    LOFT_PSAN_SET_PHASE(SimPhase::Idle, 0);
    ch.setConcurrent(false);
    psan::setEnabledForTest(-1);
}

/// ---------------------------------------------------------------
/// The sanitizer only reads simulation state: enabling it must keep
/// the fingerprint bit-identical to a sanitizer-off run, serial and
/// partitioned alike.
/// ---------------------------------------------------------------

TEST(PhaseSanitizer, FingerprintIdenticalWithSanitizerEnabled)
{
    if (!psan::kCompiledIn)
        GTEST_SKIP() << "audit layer compiled out (-DLOFT_AUDIT=OFF)";
    const TrafficPattern pattern = smallPattern();
    for (NetKind kind : {NetKind::Loft, NetKind::Wormhole}) {
        psan::setEnabledForTest(0);
        const RunResult ref =
            runExperiment(smallConfig(kind), pattern, 0.15);
        const std::string want = sweepFingerprint(ref);

        psan::setEnabledForTest(1);
        for (unsigned workers : {1u, 4u}) {
            RunConfig cfg = smallConfig(kind);
            cfg.intraRunWorkers = workers;
            const RunResult got = runExperiment(cfg, pattern, 0.15);
            EXPECT_EQ(want, sweepFingerprint(got))
                << "kind=" << (kind == NetKind::Loft ? "loft" : "wh")
                << " workers=" << workers;
        }
        psan::setEnabledForTest(-1);
    }
}

} // namespace
} // namespace noc
