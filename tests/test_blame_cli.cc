/**
 * @file
 * Golden-output tests for the loft-blame report renderers, plus a
 * round trip: a real TraceCollector dump must parse and render through
 * the same library the CLI uses.
 */

#include <gtest/gtest.h>

#include <string>

#include "blame_report.hh"
#include "harness/experiment.hh"
#include "qos/allocation.hh"

namespace
{

/** A tiny hand-written dump covering every section. */
const char *const kDump = R"({"schema":"loft-trace-dump/1",
"kind":"loft","mesh":"2x2","cycles_per_slot":2,
"reason":"blame","cycle":1000,
"packets":{"traced":2,"sampled":1,"mismatches":0,
"total_latency_cycles":40},
"stages":{"src_queue":10,"src_reservation":4,"link":12,
"lookahead_wait":2,"reservation_wait":6,"switch_stall":8,
"spec_savings":4,"sink_reassembly":2},
"blame":{"attributed":9,"unattributed":5,"pairs":[
{"victim":1,"aggressor":2,"cycles":6},
{"victim":2,"aggressor":1,"cycles":3}]},
"flows":[
{"flow":1,"packets":1,"latency_cycles":25,"max_latency":25,
"stages":{"src_queue":8,"src_reservation":2,"link":6,
"lookahead_wait":1,"reservation_wait":4,"switch_stall":5,
"spec_savings":2,"sink_reassembly":1},
"throttled":{"no_vc":0,"no_credit":0,"frame_quota":0,
"no_la_credit":3,"sched_throttle":1,"no_spec_credit":0,
"no_nonspec_credit":0}}],
"exemplars":[
{"packet":7,"flow":1,"src":0,"dst":3,"accepted":100,
"delivered":125,"latency":25,"sampled":true,"tail":true,
"stages":{"src_queue":8,"src_reservation":2,"link":6,
"lookahead_wait":1,"reservation_wait":4,"switch_stall":5,
"spec_savings":2,"sink_reassembly":1},
"src_blame":[{"flow":2,"cycles":4}],
"hops":[{"node":1,"out":"East","arrive":110,"forward":118,
"decision":111,"booked_slot":57,"lookahead_wait":1,
"reservation_wait":3,"switch_stall":4,"spec_savings":0,
"link":2,"blame":[{"flow":2,"cycles":6}]}]}],
"flight":[{"node":0,"events":[
{"cycle":99,"event":"accepted","lane":"NI","flow":1,"arg":7},
{"cycle":101,"event":"throttled","lane":"NI","flow":1,
"reason":"no_la_credit"}]}]})";

blame::Json
parsed()
{
    blame::Json doc;
    std::string error;
    EXPECT_TRUE(blame::parseJson(kDump, doc, error)) << error;
    return doc;
}

TEST(BlameCli, SummaryGolden)
{
    EXPECT_EQ(blame::renderSummary(parsed()),
              "loft-blame: kind=loft mesh=2x2 reason=blame cycle=1000\n"
              "packets: traced=2 sampled=1 mismatches=0 "
              "total-latency=40 cycles\n"
              "blame: attributed=9 unattributed=5 cycles\n");
}

TEST(BlameCli, StagesGolden)
{
    const std::string out = blame::renderStages(parsed());
    EXPECT_NE(out.find("stage breakdown"), std::string::npos);
    EXPECT_NE(out.find("  src_queue                  10   25.0%\n"),
              std::string::npos);
    EXPECT_NE(out.find("  spec_savings     -          4  -10.0%"
                       "  (speculation, subtracted)\n"),
              std::string::npos);
    EXPECT_NE(out.find("  total                      40  100.0%\n"),
              std::string::npos);
}

TEST(BlameCli, MatrixGolden)
{
    const std::string out = blame::renderMatrix(parsed());
    EXPECT_NE(out.find("interference matrix"), std::string::npos);
    EXPECT_NE(out.find("         1          2            6\n"),
              std::string::npos);
    EXPECT_NE(out.find("         2          1            3\n"),
              std::string::npos);
}

TEST(BlameCli, FlowsGolden)
{
    const std::string out = blame::renderFlows(parsed());
    // flow 1: one 25-cycle packet, 4 throttle events, src_queue is
    // the largest additive stage.
    EXPECT_NE(out.find("     1         1       25.0        25"),
              std::string::npos);
    EXPECT_NE(out.find("src_queue"), std::string::npos);
    EXPECT_NE(out.find("        4  "), std::string::npos);
}

TEST(BlameCli, PacketCriticalPathGolden)
{
    const std::string out = blame::renderPacket(parsed(), 7);
    EXPECT_NE(out.find("packet 7 flow=1 route=0->3 accepted=@100 "
                       "delivered=@125 latency=25 [tail]"),
              std::string::npos);
    EXPECT_NE(out.find("stages: src_queue=8 src_reservation=2 link=6 "
                       "lookahead_wait=1 reservation_wait=4 "
                       "switch_stall=5 sink_reassembly=1 "
                       "spec_savings=2 (additive sum 27)"),
              std::string::npos);
    EXPECT_NE(out.find("source blame: flow2=4"), std::string::npos);
    EXPECT_NE(out.find("node 1    out=East   arrive=@110      "
                       "forward=@118"),
              std::string::npos);
    EXPECT_NE(out.find("slot=57"), std::string::npos);
    EXPECT_NE(out.find("blame: flow2=6"), std::string::npos);
}

TEST(BlameCli, MissingPacketIsReported)
{
    EXPECT_NE(blame::renderPacket(parsed(), 999).find("no exemplar"),
              std::string::npos);
}

TEST(BlameCli, FlightGolden)
{
    const std::string out = blame::renderFlight(parsed());
    EXPECT_NE(out.find("node 0:"), std::string::npos);
    EXPECT_NE(out.find("@99       accepted         lane=NI     flow=1"),
              std::string::npos);
    EXPECT_NE(out.find("reason=no_la_credit"), std::string::npos);
}

TEST(BlameCli, RejectsMalformedInput)
{
    blame::Json doc;
    std::string error;
    EXPECT_FALSE(blame::parseJson("{\"a\":", doc, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(blame::parseJson("{} trailing", doc, error));
}

TEST(BlameCli, RealDumpRoundTrips)
{
    if (!noc::kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";
    noc::RunConfig c;
    c.kind = noc::NetKind::Loft;
    c.meshWidth = 4;
    c.meshHeight = 4;
    c.warmupCycles = 500;
    c.measureCycles = 2000;
    c.loft.frameSizeFlits = 64;
    c.loft.centralBufferFlits = 64;
    c.loft.specBufferFlits = 8;
    c.loft.maxFlows = 16;
    c.loft.sourceQueueFlits = 32;
    c.trace.enabled = true;
    c.trace.sampleRate = 1.0;
    noc::Mesh2D mesh(4, 4);
    noc::TrafficPattern p = noc::uniformPattern(mesh);
    noc::setEqualSharesByMaxFlows(p.flows, 16);
    const noc::RunResult r = noc::runExperiment(c, p, 0.15);
    ASSERT_NE(r.trace, nullptr);

    blame::Json doc;
    std::string error;
    ASSERT_TRUE(blame::parseJson(r.trace->dumpJson("blame", 2500), doc,
                                 error))
        << error;
    EXPECT_EQ(doc.text("schema"), "loft-trace-dump/1");
    const std::string summary = blame::renderSummary(doc);
    EXPECT_NE(summary.find("kind=loft mesh=4x4"), std::string::npos);
    EXPECT_NE(blame::renderStages(doc).find("src_queue"),
              std::string::npos);
    // Every exemplar renders a critical path without error.
    const blame::Json *exs = doc.find("exemplars");
    ASSERT_NE(exs, nullptr);
    ASSERT_FALSE(exs->items.empty());
    const std::uint64_t id = exs->items.front().u64("packet");
    EXPECT_EQ(blame::renderPacket(doc, id).find("no exemplar"),
              std::string::npos);
}

} // namespace
