/**
 * @file
 * Property-based tests: randomized scheduling workloads swept over
 * configurations with TEST_P, checking the invariants the paper proves
 * or relies on:
 *
 *  - Theorem I: with condition (1) and an F-flit buffer, virtual
 *    credits never go negative under any request/credit interleaving.
 *  - Reservation conservation: a flow never holds more than WF * R
 *    unreturned bookings.
 *  - End-to-end conservation: every injected flit is ejected exactly
 *    once, for random packet mixes, quantum sizes and buffer sizes.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/loft_network.hh"
#include "core/output_scheduler.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace noc
{
namespace
{

/// ---------------------------------------------------------------
/// Theorem I under random interleavings.
/// ---------------------------------------------------------------

struct SchedCase
{
    std::uint32_t frameFlits;
    std::uint32_t windowFrames;
    std::uint32_t numFlows;
    double creditReturnProb;
    std::uint64_t seed;
};

class TheoremOne : public ::testing::TestWithParam<SchedCase>
{
};

TEST_P(TheoremOne, VirtualCreditsNeverNegative)
{
    const SchedCase sc = GetParam();
    LoftParams p;
    p.quantumFlits = 1;
    p.frameSizeFlits = sc.frameFlits;
    p.windowFrames = sc.windowFrames;
    p.centralBufferFlits = sc.frameFlits; // Theorem I precondition
    p.specBufferFlits = 0;
    p.maxFlows = sc.numFlows;
    OutputScheduler s(p, "prop");

    Rng rng(sc.seed);
    const std::uint32_t r = sc.frameFlits / sc.numFlows;
    for (FlowId f = 0; f < sc.numFlows; ++f)
        s.registerFlow(f, std::max(1u, r));

    std::vector<Slot> unreturned;
    std::vector<std::uint64_t> quantum(sc.numFlows, 0);
    for (Cycle t = 0; t < 4000; ++t) {
        s.advanceTo(t);
        // Random scheduling request.
        const FlowId f =
            static_cast<FlowId>(rng.randRange(sc.numFlows));
        Slot granted;
        if (s.trySchedule(f, t, quantum[f], t + 1, granted)) {
            ++quantum[f];
            unreturned.push_back(granted);
        }
        // Random (possibly delayed, out of order) credit returns.
        while (!unreturned.empty() && rng.chance(sc.creditReturnProb)) {
            const std::size_t i = rng.randRange(unreturned.size());
            s.onCreditReturn(unreturned[i] +
                             1 + rng.randRange(4));
            unreturned[i] = unreturned.back();
            unreturned.pop_back();
        }
        // The theorem: all credits in the window are non-negative.
        if (t % 64 == 0) {
            const Slot base = t; // quantum == 1 flit -> slot == cycle
            for (Slot off = 0; off < sc.windowFrames * sc.frameFlits / 2;
                 ++off) {
                ASSERT_GE(s.virtualCreditAt(base + off), 0)
                    << "cycle " << t << " slot " << base + off;
            }
        }
    }
    EXPECT_EQ(s.anomalyViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremOne,
    ::testing::Values(
        SchedCase{16, 2, 4, 0.9, 1},
        SchedCase{16, 2, 4, 0.3, 2},
        SchedCase{16, 4, 4, 0.1, 3},
        SchedCase{32, 2, 8, 0.5, 4},
        SchedCase{32, 4, 8, 0.05, 5},
        SchedCase{64, 2, 16, 0.5, 6},
        SchedCase{64, 3, 16, 0.2, 7},
        SchedCase{8, 2, 2, 0.02, 8}));

/// ---------------------------------------------------------------
/// Outstanding bookings bounded by the frame window.
/// ---------------------------------------------------------------

class WindowBound : public ::testing::TestWithParam<SchedCase>
{
};

TEST_P(WindowBound, FlowNeverExceedsWindowReservation)
{
    const SchedCase sc = GetParam();
    LoftParams p;
    p.quantumFlits = 1;
    p.frameSizeFlits = sc.frameFlits;
    p.windowFrames = sc.windowFrames;
    p.centralBufferFlits = sc.frameFlits;
    p.specBufferFlits = 0;
    p.maxFlows = 4;
    p.localStatusReset = false;
    OutputScheduler s(p, "wb");
    const std::uint32_t r = std::max(1u, sc.frameFlits / 4);
    s.registerFlow(0, r);

    // Never return credits: the flow must stop after booking at most
    // WF * R slots, and regain exactly R per elapsed frame.
    std::uint64_t q = 0;
    std::uint64_t granted_total = 0;
    Slot x;
    for (Cycle t = 0; t < 6 * sc.frameFlits; ++t) {
        if (s.trySchedule(0, t, q, t + 1, x)) {
            ++q;
            ++granted_total;
        }
        const std::uint64_t frames_elapsed = t / sc.frameFlits;
        ASSERT_LE(granted_total,
                  (sc.windowFrames + frames_elapsed) * r)
            << "cycle " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowBound,
    ::testing::Values(SchedCase{16, 2, 0, 0, 0},
                      SchedCase{16, 4, 0, 0, 0},
                      SchedCase{32, 2, 0, 0, 0},
                      SchedCase{64, 3, 0, 0, 0}));

/// ---------------------------------------------------------------
/// End-to-end flit conservation across LOFT configurations.
/// ---------------------------------------------------------------

struct NetCase
{
    std::uint32_t quantumFlits;
    std::uint32_t frameFlits;
    std::uint32_t specBuffer;
    std::uint32_t packetSize;
    bool speculative;
    bool reset;
    std::uint64_t seed;
};

class Conservation : public ::testing::TestWithParam<NetCase>
{
};

TEST_P(Conservation, EveryFlitDeliveredExactlyOnce)
{
    const NetCase nc = GetParam();
    Mesh2D mesh(4, 4);
    LoftParams p;
    p.quantumFlits = nc.quantumFlits;
    p.frameSizeFlits = nc.frameFlits;
    p.windowFrames = 2;
    p.centralBufferFlits = nc.frameFlits;
    p.specBufferFlits = nc.specBuffer;
    p.maxFlows = 16;
    p.speculativeSwitching = nc.speculative;
    p.localStatusReset = nc.reset;
    p.sourceQueueFlits = 0; // unbounded NI queue

    LoftNetwork net(mesh, p);
    std::vector<FlowSpec> flows;
    Rng rng(nc.seed);
    for (FlowId f = 0; f < 8; ++f) {
        FlowSpec fs;
        fs.id = f;
        fs.src = f;
        fs.dst = 15 - f;
        fs.bwShare = 1.0 / 16;
        flows.push_back(fs);
    }
    net.registerFlows(flows);
    Simulator sim;
    net.attach(sim);
    net.metrics().startMeasurement(0);

    std::uint64_t offered_flits = 0;
    PacketId id = 1;
    for (int i = 0; i < 40; ++i) {
        const auto &f = flows[rng.randRange(flows.size())];
        Packet pkt;
        pkt.id = id++;
        pkt.flow = f.id;
        pkt.src = f.src;
        pkt.dst = f.dst;
        pkt.sizeFlits = 1 + rng.randRange(nc.packetSize);
        ASSERT_TRUE(net.inject(pkt));
        offered_flits += pkt.sizeFlits;
    }
    ASSERT_TRUE(sim.runUntil(
        [&] { return net.metrics().totalFlits() == offered_flits; },
        60000))
        << "delivered " << net.metrics().totalFlits() << " of "
        << offered_flits;
    sim.run(100);
    EXPECT_EQ(net.metrics().totalFlits(), offered_flits);
    EXPECT_EQ(net.flitsInFlight(), 0u);
    EXPECT_EQ(net.totalAnomalyViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conservation,
    ::testing::Values(
        NetCase{2, 64, 8, 4, true, true, 11},
        NetCase{2, 64, 8, 4, false, true, 12},
        NetCase{2, 64, 0, 4, true, true, 13},
        NetCase{2, 64, 8, 4, true, false, 14},
        NetCase{2, 64, 8, 4, false, false, 15},
        NetCase{1, 32, 4, 5, true, true, 16},
        NetCase{1, 32, 4, 3, true, false, 17},
        NetCase{4, 64, 8, 7, true, true, 18},
        NetCase{2, 128, 16, 6, true, true, 19}));

/// ---------------------------------------------------------------
/// Condition (1) checked from the outside, through the observer
/// hooks: every grant into a future frame i must satisfy
/// F - skipped(i) <= virtual credit just before the frame starts,
/// and no flow may exceed its per-frame reservation.
/// ---------------------------------------------------------------

class ConditionOneObserver : public NetObserver
{
  public:
    std::uint64_t grants = 0;
    std::uint64_t futureGrants = 0;
    std::uint64_t conditionViolations = 0;
    std::uint64_t budgetViolations = 0;
    std::uint64_t doubleBookings = 0;

    void
    onSchedFlowRegistered(const OutputScheduler &, FlowId flow,
                          std::uint32_t quanta) override
    {
        reservation_[flow] = quanta;
    }

    void
    onSchedGrant(const OutputScheduler &s, FlowId flow, std::uint64_t,
                 Slot abs_slot, std::uint64_t frame, Cycle) override
    {
        ++grants;
        if (!granted_.insert(abs_slot).second)
            ++doubleBookings;
        if (++frameGrants_[{frame, flow}] > reservation_.at(flow))
            ++budgetViolations;
        if (frame == s.headFrame())
            return;
        ++futureGrants;
        const std::uint32_t fs = s.params().frameSlots();
        const Slot frameStart =
            s.windowStartAbsSlot() + (frame - s.headFrame()) * fs;
        const std::int32_t prior = s.virtualCreditAt(frameStart - 1);
        const std::int32_t lhs = static_cast<std::int32_t>(fs) -
            static_cast<std::int32_t>(s.skippedAt(frame));
        if (lhs > prior)
            ++conditionViolations;
    }

  private:
    std::map<FlowId, std::uint32_t> reservation_;
    std::map<std::pair<std::uint64_t, FlowId>, std::uint32_t>
        frameGrants_;
    std::set<Slot> granted_;
};

class ConditionOne : public ::testing::TestWithParam<SchedCase>
{
};

TEST_P(ConditionOne, RandomReservationMixNeverBreaksConditionOne)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";

    const SchedCase sc = GetParam();
    LoftParams p;
    p.quantumFlits = 1;
    p.frameSizeFlits = sc.frameFlits;
    p.windowFrames = sc.windowFrames;
    p.centralBufferFlits = sc.frameFlits;
    p.specBufferFlits = 0;
    p.maxFlows = sc.numFlows;
    OutputScheduler s(p, "cond1");
    ConditionOneObserver obs;
    s.setObserver(&obs);

    // Random reservation mix with sum(R) <= F: each flow draws from
    // what is left while keeping one slot for every later flow.
    Rng rng(sc.seed);
    std::uint32_t left = sc.frameFlits;
    for (FlowId f = 0; f < sc.numFlows; ++f) {
        const std::uint32_t remaining = sc.numFlows - 1 - f;
        const std::uint32_t maxR = left - remaining;
        const std::uint32_t r =
            1 + static_cast<std::uint32_t>(rng.randRange(maxR));
        left -= r;
        s.registerFlow(f, r);
    }

    std::vector<Slot> unreturned;
    std::vector<std::uint64_t> quantum(sc.numFlows, 0);
    for (Cycle t = 0; t < 4000; ++t) {
        s.advanceTo(t);
        const FlowId f =
            static_cast<FlowId>(rng.randRange(sc.numFlows));
        Slot granted;
        if (s.trySchedule(f, t, quantum[f], t + 1, granted)) {
            ++quantum[f];
            unreturned.push_back(granted);
        }
        while (!unreturned.empty() && rng.chance(sc.creditReturnProb)) {
            const std::size_t i = rng.randRange(unreturned.size());
            s.onCreditReturn(unreturned[i] + 1 + rng.randRange(4));
            unreturned[i] = unreturned.back();
            unreturned.pop_back();
        }
    }
    EXPECT_GT(obs.grants, 0u);
    EXPECT_EQ(obs.conditionViolations, 0u);
    EXPECT_EQ(obs.budgetViolations, 0u);
    EXPECT_EQ(obs.doubleBookings, 0u);
    EXPECT_EQ(s.anomalyViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConditionOne,
    ::testing::Values(
        SchedCase{16, 2, 4, 0.9, 21},
        SchedCase{16, 2, 4, 0.3, 22},
        SchedCase{16, 4, 4, 0.1, 23},
        SchedCase{32, 2, 8, 0.5, 24},
        SchedCase{32, 4, 8, 0.05, 25},
        SchedCase{64, 2, 16, 0.5, 26},
        SchedCase{64, 3, 16, 0.2, 27},
        SchedCase{8, 2, 2, 0.02, 28}));

TEST(ConditionOneFuture, AggressiveFlowIsPushedIntoFutureFrames)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";

    // One flow requesting every cycle with prompt credit returns runs
    // ahead of the head frame, so condition (1) actually gets
    // exercised on future-frame grants (not vacuously true).
    LoftParams p;
    p.quantumFlits = 1;
    p.frameSizeFlits = 16;
    p.windowFrames = 4;
    p.centralBufferFlits = 16;
    p.specBufferFlits = 0;
    p.maxFlows = 2;
    OutputScheduler s(p, "future");
    ConditionOneObserver obs;
    s.setObserver(&obs);
    s.registerFlow(0, 8);

    std::uint64_t q = 0;
    for (Cycle t = 0; t < 512; ++t) {
        s.advanceTo(t);
        Slot granted;
        if (s.trySchedule(0, t, q, t + 1, granted)) {
            ++q;
            s.onCreditReturn(granted + 1);
        }
    }
    EXPECT_GT(obs.futureGrants, 0u);
    EXPECT_EQ(obs.conditionViolations, 0u);
    EXPECT_EQ(obs.budgetViolations, 0u);
}

} // namespace
} // namespace noc
