/**
 * @file
 * Unit tests for the LSF output scheduler: Algorithms 1-3, the
 * skipped() counters, condition (1), frame recycling, credit
 * accounting, and local status reset.
 *
 * Tests use a small configuration (quantum 1 flit, frame 4 flits,
 * window 4 frames, buffer 4 flits) so every slot can be reasoned about
 * by hand; this mirrors the example of Section 4.2 / Fig. 8.
 */

#include <gtest/gtest.h>

#include "core/output_scheduler.hh"

namespace noc
{
namespace
{

LoftParams
smallParams()
{
    LoftParams p;
    p.quantumFlits = 1;
    p.frameSizeFlits = 4;  // F = 4 slots
    p.windowFrames = 4;    // WT = 16 slots
    p.centralBufferFlits = 4;
    p.specBufferFlits = 0;
    p.maxFlows = 8;
    p.localStatusReset = true;
    return p;
}

TEST(OutputScheduler, RegistersFlowsUpToFrameCapacity)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    s.registerFlow(1, 2);
    EXPECT_EQ(s.reservedSlotsTotal(), 4u);
    EXPECT_TRUE(s.hasFlow(0));
    EXPECT_FALSE(s.hasFlow(7));
}

TEST(OutputScheduler, OverbookingIsFatal)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 3);
    EXPECT_EXIT(s.registerFlow(1, 2), ::testing::ExitedWithCode(1),
                "sum R > F");
}

TEST(OutputScheduler, DuplicateFlowIsFatal)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 1);
    EXPECT_EXIT(s.registerFlow(0, 1), ::testing::ExitedWithCode(1),
                "twice");
}

TEST(OutputScheduler, SchedulesSequentialSlots)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    Slot a, b;
    EXPECT_TRUE(s.trySchedule(0, 0, 0, 1, a));
    EXPECT_TRUE(s.trySchedule(0, 0, 1, 1, b));
    EXPECT_EQ(a, 1u); // CP+1 within the head frame
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(s.grants(), 2u);
}

TEST(OutputScheduler, HonoursEarliestConstraint)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    Slot a;
    EXPECT_TRUE(s.trySchedule(0, 0, 0, 3, a));
    EXPECT_GE(a, 3u);
}

TEST(OutputScheduler, AdvancesInjectionFrameWhenFrameFull)
{
    // R = 2 in a 4-slot frame; after two grants in the head frame (and
    // with their virtual credits returned, so condition (1) allows it)
    // the flow moves on to the next frame per Algorithm 1.
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    Slot a, b, c;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 1, a));
    ASSERT_TRUE(s.trySchedule(0, 0, 1, 1, b));
    EXPECT_EQ(s.flowInjectFrame(0), 0u);
    EXPECT_EQ(s.flowRemaining(0), 0u);
    s.onCreditReturn(a + 1);
    s.onCreditReturn(b + 1);
    ASSERT_TRUE(s.trySchedule(0, 0, 2, 1, c));
    EXPECT_EQ(s.flowInjectFrame(0), 1u);
    EXPECT_GE(c, 4u); // next frame starts at slot 4
}

TEST(OutputScheduler, ConditionOneBlocksFrameAdvanceWithoutReturns)
{
    // Without credit returns, condition (1) (appendix equation (4))
    // forbids booking beyond the head frame: the buffer headroom
    // cannot cover a full frame of injections.
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    Slot x;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 1, x));
    ASSERT_TRUE(s.trySchedule(0, 0, 1, 1, x));
    EXPECT_FALSE(s.trySchedule(0, 0, 2, 1, x));
    // The yielded reservations are recorded for the skipped frames.
    EXPECT_GT(s.skippedAt(1), 0u);
}

TEST(OutputScheduler, ThrottlesWhenWindowExhausted)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 1);
    Slot x;
    // R=1 per frame, 4 frames -> 4 grants (credits returned promptly),
    // then throttle: every frame's reservation is used up.
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(s.trySchedule(0, 0, i, 1, x)) << "grant " << i;
        s.onCreditReturn(x + 1);
    }
    EXPECT_FALSE(s.trySchedule(0, 0, 4, 1, x));
    EXPECT_EQ(s.throttles(), 1u);
}

TEST(OutputScheduler, HeadFrameAdvanceRestoresReservation)
{
    LoftParams p = smallParams();
    OutputScheduler s(p, "t");
    s.registerFlow(0, 1);
    Slot x;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(s.trySchedule(0, 0, i, 1, x));
        s.onCreditReturn(x + 1);
    }
    ASSERT_FALSE(s.trySchedule(0, 0, 4, 1, x));
    // Advance wall clock past one frame (4 slots x 1 flit = 4 cycles):
    // the window shifts, recycling one frame (Algorithm 3).
    EXPECT_TRUE(s.trySchedule(0, 4, 4, 5, x));
}

TEST(OutputScheduler, SkippedAccumulatesYieldedReservations)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    Slot x;
    // Force the flow past the head frame by an earliest constraint
    // beyond the head frame's end: its 2 unused slots are skipped.
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 6, x));
    EXPECT_EQ(s.skippedAt(0), 2u);
    EXPECT_EQ(s.flowInjectFrame(0), 1u);
}

TEST(OutputScheduler, BusySlotNotDoubleBooked)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    s.registerFlow(1, 2);
    Slot a, b;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 1, a));
    ASSERT_TRUE(s.trySchedule(1, 0, 0, 1, b));
    EXPECT_NE(a, b);
    const auto ba = s.bookingAt(a);
    ASSERT_TRUE(ba.has_value());
    EXPECT_EQ(ba->flow, 0u);
    EXPECT_EQ(s.bookingAt(b)->flow, 1u);
}

TEST(OutputScheduler, CreditsDecreaseCumulativelyFromBookedSlot)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 4);
    Slot a;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 2, a));
    EXPECT_EQ(a, 2u);
    EXPECT_EQ(s.virtualCreditAt(1), 4); // before the booking: untouched
    EXPECT_EQ(s.virtualCreditAt(2), 3);
    EXPECT_EQ(s.virtualCreditAt(9), 3); // cumulative to window end
}

TEST(OutputScheduler, CreditReturnRestoresFromDepartureSlot)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 4);
    Slot a;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 1, a));
    s.onCreditReturn(5);
    EXPECT_EQ(s.virtualCreditAt(3), 3); // still consumed before 5
    EXPECT_EQ(s.virtualCreditAt(5), 4);
    EXPECT_EQ(s.virtualCreditAt(10), 4);
    EXPECT_EQ(s.outstandingCredits(), 0u);
}

TEST(OutputScheduler, CreditsNeverExceedBufferSize)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 4);
    Slot a;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 1, a));
    s.onCreditReturn(1);
    s.onCreditReturn(1); // stale (post-reset style) return
    EXPECT_EQ(s.virtualCreditAt(8), 4);
}

TEST(OutputScheduler, BufferExhaustionBlocksScheduling)
{
    // The head frame has slots 1..3 available (CP+1 onward); with no
    // credits returned, condition (1) blocks later frames, so exactly
    // three quanta can be booked before the flow throttles.
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 4);
    Slot x;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(s.trySchedule(0, 0, i, 1, x));
    EXPECT_FALSE(s.trySchedule(0, 0, 3, 1, x));
    // Returning the consumed credits re-opens scheduling in a later
    // frame (skipped() has recorded the yielded head-frame slot).
    for (Slot t = 2; t <= 4; ++t)
        s.onCreditReturn(t);
    EXPECT_TRUE(s.trySchedule(0, 0, 3, 1, x));
    EXPECT_GE(x, 4u);
}

TEST(OutputScheduler, ClearBookingFreesSlot)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    Slot a;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 1, a));
    EXPECT_TRUE(s.bookingAt(a).has_value());
    s.clearBooking(a);
    EXPECT_FALSE(s.bookingAt(a).has_value());
    EXPECT_FALSE(s.earliestBookedSlot().has_value());
}

TEST(OutputScheduler, LocalResetRestoresFreshWindow)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 1);
    Slot x;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(s.trySchedule(0, 0, i, 1, x));
        s.clearBooking(x);
        s.onCreditReturn(x + 1);
    }
    ASSERT_FALSE(s.trySchedule(0, 0, 4, 1, x));
    ASSERT_TRUE(s.canLocalReset());
    s.localReset(8);
    EXPECT_EQ(s.headFrame(), 0u);
    EXPECT_EQ(s.resets(), 1u);
    // Fresh reservations and credits after the reset.
    EXPECT_TRUE(s.trySchedule(0, 8, 4, 9, x));
}

TEST(OutputScheduler, CannotResetWithBookings)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 1);
    Slot x;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 1, x));
    EXPECT_FALSE(s.canLocalReset());
}

TEST(OutputScheduler, UnregisteredFlowPanics)
{
    OutputScheduler s(smallParams(), "t");
    Slot x;
    EXPECT_DEATH((void)s.trySchedule(9, 0, 0, 1, x), "unregistered");
}

TEST(OutputScheduler, FrameRecyclingClearsStaleState)
{
    OutputScheduler s(smallParams(), "t");
    s.registerFlow(0, 2);
    Slot a;
    ASSERT_TRUE(s.trySchedule(0, 0, 0, 1, a));
    // Run wall-clock far enough that the booked frame expires
    // (WT = 16 slots => 16 cycles with 1-flit quanta).
    s.advanceTo(20);
    EXPECT_FALSE(s.bookingAt(a).has_value());
    EXPECT_GT(s.headFrame(), 0u);
}

} // namespace
} // namespace noc
