/**
 * @file
 * Tests for the GSF baseline: barrier semantics, per-frame quota
 * enforcement at the sources, and end-to-end delivery.
 */

#include <gtest/gtest.h>

#include "gsf/gsf_network.hh"
#include "sim/simulator.hh"
#include "traffic/generator.hh"
#include "traffic/pattern.hh"

namespace noc
{
namespace
{

TEST(GsfBarrier, AdvancesAfterDelayWhenHeadEmpty)
{
    GsfBarrier b(6, 16);
    EXPECT_EQ(b.headFrame(), 0u);
    b.tick(0);                     // head empty -> schedule advance
    for (Cycle t = 1; t < 16; ++t)
        b.tick(t);
    EXPECT_EQ(b.headFrame(), 0u); // not yet
    b.tick(16);
    EXPECT_EQ(b.headFrame(), 1u);
}

TEST(GsfBarrier, BlockedWhileHeadInFlight)
{
    GsfBarrier b(6, 4);
    b.onPacketAdmitted(0, 4);
    for (Cycle t = 0; t < 50; ++t)
        b.tick(t);
    EXPECT_EQ(b.headFrame(), 0u);
    for (int i = 0; i < 4; ++i)
        b.onFlitEjected(0);
    for (Cycle t = 50; t < 56; ++t)
        b.tick(t);
    EXPECT_EQ(b.headFrame(), 1u);
}

TEST(GsfBarrier, WindowBounds)
{
    GsfBarrier b(6, 1);
    EXPECT_EQ(b.newestFrame(), 5u);
    b.onPacketAdmitted(5, 4);
    EXPECT_DEATH(b.onPacketAdmitted(6, 4), "inactive frame");
}

TEST(GsfBarrier, EjectionFromEmptyFramePanics)
{
    GsfBarrier b(6, 1);
    EXPECT_DEATH(b.onFlitEjected(3), "empty frame");
}

TEST(GsfBarrier, InFlightAccounting)
{
    GsfBarrier b(4, 2);
    b.onPacketAdmitted(1, 4);
    b.onPacketAdmitted(2, 4);
    EXPECT_EQ(b.inFlightFlits(), 8u);
    b.onFlitEjected(1);
    EXPECT_EQ(b.inFlightFlits(), 7u);
}

class GsfNetTest : public ::testing::Test
{
  protected:
    GsfNetTest() : mesh_(4, 4)
    {
        params_.frameSizeFlits = 100;
        params_.windowFrames = 4;
        params_.barrierDelay = 4;
        params_.sourceQueueFlits = 200;
        net_ = std::make_unique<GsfNetwork>(mesh_, params_);
        net_->metrics().startMeasurement(0);
    }

    void
    setupFlows(std::size_t n)
    {
        std::vector<FlowSpec> flows;
        for (FlowId f = 0; f < n; ++f) {
            FlowSpec fs;
            fs.id = f;
            fs.src = f;
            fs.dst = static_cast<NodeId>(15 - f);
            fs.bwShare = 1.0 / 16;
            flows.push_back(fs);
        }
        flows_ = flows;
        net_->registerFlows(flows);
        net_->attach(sim_);
    }

    Packet
    makePacket(PacketId id, FlowId flow, Cycle now)
    {
        Packet p;
        p.id = id;
        p.flow = flow;
        p.src = flows_[flow].src;
        p.dst = flows_[flow].dst;
        p.sizeFlits = 4;
        p.createdAt = now;
        p.enqueuedAt = now;
        return p;
    }

    Mesh2D mesh_;
    GsfParams params_;
    std::unique_ptr<GsfNetwork> net_;
    std::vector<FlowSpec> flows_;
    Simulator sim_;
};

TEST_F(GsfNetTest, DeliversPackets)
{
    setupFlows(8);
    PacketId id = 1;
    for (int r = 0; r < 4; ++r)
        for (FlowId f = 0; f < 8; ++f)
            ASSERT_TRUE(net_->inject(makePacket(id++, f, 0)));
    EXPECT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 32; }, 5000));
    EXPECT_EQ(net_->flitsInFlight(), 0u);
    EXPECT_EQ(net_->barrier().inFlightFlits(), 0u);
}

TEST_F(GsfNetTest, ReservationDerivedFromShare)
{
    setupFlows(1);
    FlowSpec f;
    f.bwShare = 0.25;
    EXPECT_EQ(net_->reservationOf(f), 25u);
    f.bwShare = 0.0001;
    EXPECT_EQ(net_->reservationOf(f), 1u); // floor of one flit
}

TEST_F(GsfNetTest, QuotaThrottlesSingleGreedyFlow)
{
    // One flow with a tiny reservation cannot use more than its quota
    // per frame window while the barrier is held by its own flits.
    setupFlows(2);
    // Saturate flow 0's source queue.
    PacketId id = 1;
    while (net_->canInject(0))
        ASSERT_TRUE(net_->inject(makePacket(id++, 0, 0)));
    sim_.run(300);
    // With R = 100/16 ~ 6 flits per frame and 4 frames in flight, no
    // more than WF * R flits may be in the network unejected at once;
    // ejection drains at 1/cycle so accepted throughput is bounded but
    // nonzero.
    const auto ejected = net_->metrics().totalFlits();
    EXPECT_GT(ejected, 0u);
}

TEST_F(GsfNetTest, HeadFrameInjectionForbidden)
{
    // GSF sources never tag packets with the current head frame
    // (Section 3.1): the earliest admissible frame is head + 1.
    setupFlows(2);
    PacketId id = 1;
    std::uint64_t min_frame_seen = ~0ull;
    net_->fabric().sink(flows_[0].dst).setOnEject(
        [&](const Flit &flit, Cycle) {
            min_frame_seen = std::min(min_frame_seen, flit.frame);
        });
    ASSERT_TRUE(net_->inject(makePacket(id++, 0, 0)));
    sim_.run(200);
    ASSERT_NE(min_frame_seen, ~0ull);
    EXPECT_GE(min_frame_seen, 1u);
}

TEST_F(GsfNetTest, QuotaLimitsPerWindowAdmission)
{
    // With the barrier held (head frame never drains because we keep
    // its flits un-ejected is hard to arrange; instead use a tiny
    // reservation): a flow with R flits/frame and W-1 usable frames
    // can have at most (W-1) * R flits admitted before its first
    // recycle.
    setupFlows(1);
    // R = 100/16 ~ 6 flits -> one 4-flit packet per frame; 3 usable
    // frames in a 4-frame window.
    PacketId id = 1;
    while (net_->canInject(0) && id < 50)
        ASSERT_TRUE(net_->inject(makePacket(id++, 0, 0)));
    sim_.run(30); // shorter than frame drain + barrier delay
    // Admitted flits = in flight + ejected; bounded by the window.
    const std::uint64_t admitted =
        net_->barrier().inFlightFlits() +
        net_->metrics().totalFlits();
    EXPECT_LE(admitted, 3u * 8u); // (W-1) frames x ceil(R) flits
    EXPECT_GT(admitted, 0u);
}

TEST_F(GsfNetTest, FrameRecyclingProgresses)
{
    setupFlows(4);
    PacketId id = 1;
    for (int r = 0; r < 8; ++r)
        for (FlowId f = 0; f < 4; ++f)
            ASSERT_TRUE(net_->inject(makePacket(id++, f, 0)));
    sim_.run(2000);
    EXPECT_GT(net_->barrier().recycleCount(), 5u);
}

} // namespace
} // namespace noc
