/**
 * @file
 * Property test for the Section 5.3.1 guarantee: on a LOFT network
 * whose flows stay within their reservations, every observed packet
 * latency respects the analytical bound F x WF x hops plus the NI
 * queue drain time, across traffic patterns and loads.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "qos/allocation.hh"
#include "qos/delay_bound.hh"

namespace noc
{
namespace
{

struct BoundCase
{
    const char *pattern;
    double rate;
    std::uint64_t seed;
};

class DelayBound4x4 : public ::testing::TestWithParam<BoundCase>
{
};

TEST_P(DelayBound4x4, ObservedLatencyWithinAnalyticalBound)
{
    const BoundCase bc = GetParam();
    Mesh2D mesh(4, 4);
    RunConfig c;
    c.kind = NetKind::Loft;
    c.meshWidth = 4;
    c.meshHeight = 4;
    c.warmupCycles = 1000;
    c.measureCycles = 5000;
    c.seed = bc.seed;
    c.loft.frameSizeFlits = 64;
    c.loft.centralBufferFlits = 64;
    c.loft.specBufferFlits = 8;
    c.loft.maxFlows = 16;
    c.loft.sourceQueueFlits = 32;

    TrafficPattern p;
    const std::string name = bc.pattern;
    if (name == "hotspot")
        p = hotspotPattern(mesh, 15);
    else if (name == "transpose")
        p = transposePattern(mesh);
    else if (name == "neighbor")
        p = neighborPattern(mesh);
    else
        p = tornadoPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);

    const RunResult r = runExperiment(c, p, bc.rate);
    ASSERT_GT(r.totalPackets, 0u);

    for (std::size_t i = 0; i < p.flows.size(); ++i) {
        if (r.flowMaxLatency[i] == 0.0)
            continue;
        const std::uint32_t hops =
            flowHops(mesh, p.flows[i].src, p.flows[i].dst);
        const double bound =
            static_cast<double>(loftWorstCaseLatency(c.loft, hops));
        // Latency is measured from NI-queue entry: add the drain time
        // of a full 32-flit queue at the guaranteed rate (1/16), plus
        // the physical pipeline/link latency per hop, which the
        // frame-window bound does not count.
        const double queue_drain = 32.0 * 16.0;
        const double pipeline = hops *
            static_cast<double>(c.loft.routerStages +
                                c.loft.linkLatency + 2);
        // The queue drain and the per-hop windows compose with up to
        // one extra frame window of misalignment at the source NI.
        const double ni_window = static_cast<double>(
            c.loft.frameSizeFlits * c.loft.windowFrames);
        EXPECT_LE(r.flowMaxLatency[i],
                  bound + queue_drain + pipeline + ni_window)
            << bc.pattern << " flow " << i << " rate " << bc.rate;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DelayBound4x4,
    ::testing::Values(BoundCase{"hotspot", 0.05, 1},
                      BoundCase{"hotspot", 0.5, 2},
                      BoundCase{"transpose", 0.3, 3},
                      BoundCase{"neighbor", 0.6, 4},
                      BoundCase{"tornado", 0.4, 5}));

} // namespace
} // namespace noc
