/**
 * @file
 * Unit tests for the admission controller, including the end-to-end
 * property that what it admits can always be registered on a real
 * LOFT network without violating any link budget.
 */

#include <gtest/gtest.h>

#include "core/loft_network.hh"
#include "qos/admission.hh"

namespace noc
{
namespace
{

LoftParams
smallParams()
{
    LoftParams p;
    p.frameSizeFlits = 64;
    p.centralBufferFlits = 64;
    p.maxFlows = 16;
    return p;
}

FlowSpec
flow(FlowId id, NodeId src, NodeId dst, double share)
{
    FlowSpec f;
    f.id = id;
    f.src = src;
    f.dst = dst;
    f.bwShare = share;
    return f;
}

TEST(Admission, AdmitAndRelease)
{
    Mesh2D mesh(4, 4);
    AdmissionController ac(mesh, smallParams());
    const auto adm = ac.admit(flow(0, 0, 15, 0.25));
    ASSERT_TRUE(adm.has_value());
    EXPECT_EQ(ac.admittedCount(), 1u);
    EXPECT_EQ(adm->reservationFlits, 16u); // 0.25 * 64 flits
    EXPECT_TRUE(ac.release(0));
    EXPECT_EQ(ac.admittedCount(), 0u);
    EXPECT_FALSE(ac.release(0));
}

TEST(Admission, DelayBoundMatchesEquationTwo)
{
    Mesh2D mesh(4, 4);
    LoftParams p = smallParams();
    AdmissionController ac(mesh, p);
    const auto adm = ac.admit(flow(0, 0, 15, 0.25));
    ASSERT_TRUE(adm.has_value());
    // 6 router links + ejection = 7 hops; F * WF * hops.
    EXPECT_EQ(adm->delayBound, 64u * 2 * 7);
}

TEST(Admission, RejectsWhenLinkFull)
{
    Mesh2D mesh(4, 4);
    AdmissionController ac(mesh, smallParams());
    // Four flows, each 1/4 of the ejection link of node 15: full.
    for (FlowId f = 0; f < 4; ++f)
        ASSERT_TRUE(ac.admit(flow(f, f, 15, 0.25)).has_value());
    EXPECT_FALSE(ac.admit(flow(4, 4, 15, 0.25)).has_value());
    // A disjoint path is still admissible.
    EXPECT_TRUE(ac.admit(flow(5, 8, 9, 0.25)).has_value());
}

TEST(Admission, ReleaseFreesCapacity)
{
    Mesh2D mesh(4, 4);
    AdmissionController ac(mesh, smallParams());
    for (FlowId f = 0; f < 4; ++f)
        ASSERT_TRUE(ac.admit(flow(f, f, 15, 0.25)).has_value());
    ASSERT_FALSE(ac.admit(flow(9, 4, 15, 0.25)).has_value());
    ASSERT_TRUE(ac.release(2));
    EXPECT_TRUE(ac.admit(flow(9, 4, 15, 0.25)).has_value());
}

TEST(Admission, MaxAdmissibleShareShrinks)
{
    Mesh2D mesh(4, 4);
    AdmissionController ac(mesh, smallParams());
    EXPECT_DOUBLE_EQ(ac.maxAdmissibleShare(0, 15), 1.0);
    ASSERT_TRUE(ac.admit(flow(0, 0, 15, 0.5)).has_value());
    EXPECT_DOUBLE_EQ(ac.maxAdmissibleShare(0, 15), 0.5);
    EXPECT_DOUBLE_EQ(ac.maxAdmissibleShare(1, 15), 0.5);
    // A path sharing no link with the admitted flow keeps everything.
    EXPECT_DOUBLE_EQ(ac.maxAdmissibleShare(10, 11), 1.0);
}

TEST(Admission, DuplicateIdRejected)
{
    Mesh2D mesh(4, 4);
    AdmissionController ac(mesh, smallParams());
    ASSERT_TRUE(ac.admit(flow(7, 0, 5, 0.1)).has_value());
    EXPECT_FALSE(ac.admit(flow(7, 1, 6, 0.1)).has_value());
}

TEST(Admission, ZeroShareRejected)
{
    Mesh2D mesh(4, 4);
    AdmissionController ac(mesh, smallParams());
    EXPECT_FALSE(ac.admit(flow(0, 0, 5, 0.0)).has_value());
}

TEST(Admission, FlowCountLimitEnforced)
{
    Mesh2D mesh(4, 4);
    LoftParams p = smallParams();
    p.maxFlows = 2;
    AdmissionController ac(mesh, p);
    ASSERT_TRUE(ac.admit(flow(0, 0, 3, 0.05)).has_value());
    ASSERT_TRUE(ac.admit(flow(1, 0, 3, 0.05)).has_value());
    // Plenty of bandwidth left, but only 2 flows may share a link.
    EXPECT_FALSE(ac.admit(flow(2, 0, 3, 0.05)).has_value());
    EXPECT_DOUBLE_EQ(ac.maxAdmissibleShare(0, 3), 0.0);
}

TEST(Admission, AdmittedSetRegistersOnRealNetwork)
{
    // End-to-end property: whatever the controller admits can be
    // registered on a LoftNetwork without tripping the sum(R) <= F
    // fatal check.
    Mesh2D mesh(4, 4);
    const LoftParams p = smallParams();
    AdmissionController ac(mesh, p);
    std::vector<FlowSpec> admitted;
    FlowId id = 0;
    // Greedily admit a dense population of quarter-link flows.
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            FlowSpec f = flow(id, s, d, 0.25);
            if (ac.admit(f).has_value()) {
                admitted.push_back(f);
                ++id;
            }
        }
    }
    EXPECT_GT(admitted.size(), 4u);
    LoftNetwork net(mesh, p);
    net.registerFlows(admitted); // would fatal() on oversubscription
}

} // namespace
} // namespace noc
