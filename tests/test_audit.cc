/**
 * @file
 * Tests of the runtime invariant-audit subsystem (src/audit):
 *
 *  - clean runs of all three networks produce zero audit violations;
 *  - speculative flit switching may reorder flits but never breaks
 *    conservation or the reservation protocol;
 *  - deliberately corrupted component state (a reservation-table
 *    entry, a virtual-credit counter) is reported within one frame
 *    window, proving the auditor is live, not vacuously quiet;
 *  - the deadlock/starvation watchdog trips on stalled flits and is
 *    soft (excluded from the hard violation count).
 */

#include <gtest/gtest.h>

#include <optional>

#include "audit/network_auditor.hh"
#include "harness/experiment.hh"
#include "qos/allocation.hh"
#include "sim/rng.hh"
#include "traffic/generator.hh"

namespace noc
{
namespace
{

RunConfig
smallConfig(NetKind kind)
{
    RunConfig c;
    c.kind = kind;
    c.meshWidth = 4;
    c.meshHeight = 4;
    c.warmupCycles = 1500;
    c.measureCycles = 4000;
    c.loft.frameSizeFlits = 64;
    c.loft.centralBufferFlits = 64;
    c.loft.specBufferFlits = 8;
    c.loft.maxFlows = 16;
    c.loft.sourceQueueFlits = 32;
    return c;
}

/// ---------------------------------------------------------------
/// Clean runs: the auditor is silent on correct behaviour.
/// ---------------------------------------------------------------

class CleanRun : public ::testing::TestWithParam<NetKind>
{
};

TEST_P(CleanRun, NoViolationsUnderUniformTraffic)
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    const RunResult r = runExperiment(smallConfig(GetParam()), p, 0.1);
    EXPECT_EQ(r.auditHardViolations, 0u) << r.auditReport;
    EXPECT_EQ(r.auditWatchdogs, 0u) << r.auditReport;
    EXPECT_GT(r.totalFlits, 0u);
}

TEST_P(CleanRun, NoViolationsUnderHotspotTraffic)
{
    Mesh2D mesh(4, 4);
    TrafficPattern p = hotspotPattern(mesh, 15);
    setEqualSharesByMaxFlows(p.flows, 16);
    const RunResult r = runExperiment(smallConfig(GetParam()), p, 0.4);
    EXPECT_EQ(r.auditHardViolations, 0u) << r.auditReport;
    EXPECT_EQ(r.auditWatchdogs, 0u) << r.auditReport;
}

INSTANTIATE_TEST_SUITE_P(Networks, CleanRun,
                         ::testing::Values(NetKind::Loft, NetKind::Gsf,
                                           NetKind::Wormhole));

/// ---------------------------------------------------------------
/// Speculative flit switching: reordering is legal, loss is not.
/// ---------------------------------------------------------------

TEST(SpeculativeReordering, AuditCleanWithSpeculationExercised)
{
    RunConfig c = smallConfig(NetKind::Loft);
    c.loft.speculativeSwitching = true;
    c.loft.specBufferFlits = 12;
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    const RunResult r = runExperiment(c, p, 0.15);
    if (kAuditCompiledIn) {
        EXPECT_GT(r.speculativeForwards, 0u)
            << "speculation not exercised; property vacuous";
    }
    EXPECT_EQ(r.auditHardViolations, 0u) << r.auditReport;
}

TEST(SpeculativeReordering, DrainedRunLeavesEmptyLedger)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";

    Mesh2D mesh(4, 4);
    LoftParams p;
    p.frameSizeFlits = 64;
    p.centralBufferFlits = 64;
    p.specBufferFlits = 8;
    p.maxFlows = 16;
    p.sourceQueueFlits = 0; // unbounded NI queue

    LoftNetwork net(mesh, p);
    NetworkAuditor auditor(net);
    std::vector<FlowSpec> flows;
    for (FlowId f = 0; f < 8; ++f)
        flows.push_back({f, f, NodeId(15 - f), 1.0 / 16});
    net.registerFlows(flows);

    Simulator sim;
    net.attach(sim);
    auditor.attach(sim);
    net.metrics().startMeasurement(0);

    Rng rng(99);
    std::uint64_t offered = 0;
    PacketId id = 1;
    for (int i = 0; i < 60; ++i) {
        const auto &f = flows[rng.randRange(flows.size())];
        Packet pkt;
        pkt.id = id++;
        pkt.flow = f.id;
        pkt.src = f.src;
        pkt.dst = f.dst;
        pkt.sizeFlits = 1 + rng.randRange(6);
        ASSERT_TRUE(net.inject(pkt));
        offered += pkt.sizeFlits;
    }
    ASSERT_TRUE(sim.runUntil(
        [&] { return net.metrics().totalFlits() == offered; }, 60000));
    sim.run(100);
    auditor.finalCheck(sim.now());

    EXPECT_EQ(auditor.hardViolationCount(), 0u) << auditor.report();
    EXPECT_EQ(auditor.flitsInLedger(), 0u) << auditor.report();
    std::uint64_t delivered = 0;
    for (const auto &[flow, count] : auditor.deliveredFlits()) {
        (void)flow;
        delivered += count;
    }
    EXPECT_EQ(delivered, offered);
}

/// ---------------------------------------------------------------
/// Fault injection: the auditor must notice deliberate corruption.
/// ---------------------------------------------------------------

struct FaultRig
{
    Mesh2D mesh{4, 4};
    LoftParams params;
    std::unique_ptr<LoftNetwork> net;
    std::unique_ptr<NetworkAuditor> auditor;
    std::unique_ptr<TrafficGenerator> gen;
    Simulator sim;

    FaultRig()
    {
        params.frameSizeFlits = 64;
        params.centralBufferFlits = 64;
        params.specBufferFlits = 0;
        params.speculativeSwitching = false; // keep bookings in place
        params.maxFlows = 16;
        params.sourceQueueFlits = 32;
        net = std::make_unique<LoftNetwork>(mesh, params);
        // Audit every quarter frame: a booking a mere half frame in
        // the future is then guaranteed to be inspected while live.
        AuditConfig cfg;
        cfg.deepAuditPeriod = params.frameSizeFlits / 4;
        auditor = std::make_unique<NetworkAuditor>(*net, cfg);

        TrafficPattern p = uniformPattern(mesh);
        setEqualSharesByMaxFlows(p.flows, 16);
        net->registerFlows(p.flows);
        gen = std::make_unique<TrafficGenerator>(*net, 4, 7);
        gen->configure(p.flows,
                       uniformRates(p.flows.size(), 0.3));

        sim.add(gen.get());
        net->attach(sim);
        auditor->attach(sim);
    }

    /** One frame window in cycles (the detection deadline). */
    Cycle frameWindowCycles() const
    {
        return Cycle(params.frameSizeFlits) * params.windowFrames;
    }

    OutputScheduler &
    scheduler(NodeId n, Port p)
    {
        return net->dataRouter(n).scheduler(p);
    }

    /**
     * A live booking departing late enough that a deep audit is
     * guaranteed to run before the booking is consumed.
     */
    struct Victim
    {
        OutputScheduler *sched;
        Slot slot;
    };
    std::optional<Victim>
    findFutureBooking(Cycle margin)
    {
        std::optional<Victim> best;
        auto consider = [&](OutputScheduler &s) {
            s.forEachBooking([&](Slot abs, const SlotBooking &) {
                if (params.slotStart(abs) < sim.now() + margin)
                    return;
                if (!best || abs > best->slot)
                    best = Victim{&s, abs};
            });
        };
        for (NodeId n = 0; n < mesh.numNodes(); ++n) {
            // NI schedulers first: flows running ahead of their share
            // book furthest into the future there.
            consider(net->source(n).scheduler());
            for (Port p : {Port::North, Port::East, Port::South,
                           Port::West, Port::Local})
                consider(scheduler(n, p));
            if (best)
                return best;
        }
        return best;
    }
};

TEST(FaultInjection, CorruptedReservationEntryDetectedWithinWindow)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";

    FaultRig rig;
    rig.sim.run(500);

    std::optional<FaultRig::Victim> v;
    for (int attempt = 0; attempt < 100 && !v; ++attempt) {
        rig.sim.run(20);
        // Departure at least two deep-audit periods away: an audit is
        // guaranteed to inspect the corrupted entry while still live.
        v = rig.findFutureBooking(rig.params.frameSizeFlits / 2);
    }
    ASSERT_TRUE(v) << "no future booking found to corrupt";

    const Cycle corrupted = rig.sim.now();
    v->sched->debugCorruptBookingFlow(v->slot);
    ASSERT_EQ(rig.auditor->countOf(AuditKind::StateMismatch), 0u);

    rig.sim.run(rig.frameWindowCycles());
    ASSERT_GE(rig.auditor->countOf(AuditKind::StateMismatch), 1u)
        << rig.auditor->report();
    // Reported within one frame window of the corruption.
    bool inTime = false;
    for (const auto &viol : rig.auditor->violations()) {
        if (viol.kind == AuditKind::StateMismatch &&
            viol.cycle <= corrupted + rig.frameWindowCycles())
            inTime = true;
    }
    EXPECT_TRUE(inTime) << rig.auditor->report();
}

TEST(FaultInjection, CorruptedCreditCounterDetectedWithinWindow)
{
    if (!kAuditCompiledIn)
        GTEST_SKIP() << "instrumentation compiled out";

    FaultRig rig;
    rig.sim.run(500);

    // Corrupt the credit word of the youngest slot in the window: it
    // stays inside the window (and thus inside the audit scan) for a
    // full window's worth of cycles.
    OutputScheduler &s = rig.scheduler(5, Port::East);
    const Slot victim = s.windowEndAbsSlot() - 1;
    const Cycle corrupted = rig.sim.now();
    s.debugAdjustCredit(victim, -1000000);
    ASSERT_EQ(rig.auditor->countOf(AuditKind::Credit), 0u);

    rig.sim.run(rig.frameWindowCycles());
    ASSERT_GE(rig.auditor->countOf(AuditKind::Credit), 1u)
        << rig.auditor->report();
    bool inTime = false;
    for (const auto &viol : rig.auditor->violations()) {
        if (viol.kind == AuditKind::Credit &&
            viol.cycle <= corrupted + rig.frameWindowCycles())
            inTime = true;
    }
    EXPECT_TRUE(inTime) << rig.auditor->report();
}

/// ---------------------------------------------------------------
/// Watchdog: stalled flits are reported, but only softly.
/// ---------------------------------------------------------------

TEST(Watchdog, TripsOnStalledFlitAndStaysSoft)
{
    Mesh2D mesh(2, 2);
    WormholeParams wp;
    WormholeNetwork net(mesh, wp);
    AuditConfig cfg;
    cfg.watchdogWindow = 200;
    cfg.deepAuditPeriod = 64;
    NetworkAuditor auditor(net, cfg);

    // Hand-feed a sourced flit that never progresses; the simulator
    // never runs the network, so the flit is stalled by construction.
    Flit flit;
    flit.flow = 3;
    flit.flitNo = 0;
    flit.src = 0;
    flit.dst = 3;
    auditor.onFlitSourced(0, flit, false, 10);

    for (Cycle t = 0; t < 1000; t += 64)
        auditor.tick(t);

    EXPECT_GE(auditor.countOf(AuditKind::Watchdog), 1u);
    EXPECT_EQ(auditor.hardViolationCount(), 0u) << auditor.report();
    EXPECT_GT(auditor.violationCount(), 0u);
}

TEST(Watchdog, SilentWhileTrafficFlows)
{
    RunConfig c = smallConfig(NetKind::Loft);
    Mesh2D mesh(4, 4);
    TrafficPattern p = uniformPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    const RunResult r = runExperiment(c, p, 0.1);
    EXPECT_EQ(r.auditWatchdogs, 0u) << r.auditReport;
}

/// ---------------------------------------------------------------
/// Ledger semantics, fed directly.
/// ---------------------------------------------------------------

TEST(Ledger, DuplicateSourcingIsAConservationViolation)
{
    Mesh2D mesh(2, 2);
    WormholeParams wp;
    WormholeNetwork net(mesh, wp);
    NetworkAuditor auditor(net);

    Flit flit;
    flit.flow = 1;
    flit.flitNo = 7;
    flit.src = 0;
    flit.dst = 3;
    auditor.onFlitSourced(0, flit, false, 5);
    auditor.onFlitSourced(0, flit, false, 6);
    EXPECT_EQ(auditor.countOf(AuditKind::Conservation), 1u);
    EXPECT_GE(auditor.hardViolationCount(), 1u);
}

TEST(Ledger, EjectionAtWrongNodeIsAConservationViolation)
{
    Mesh2D mesh(2, 2);
    WormholeParams wp;
    WormholeNetwork net(mesh, wp);
    NetworkAuditor auditor(net);

    Flit flit;
    flit.flow = 1;
    flit.flitNo = 0;
    flit.src = 0;
    flit.dst = 3;
    auditor.onFlitSourced(0, flit, false, 5);
    auditor.onFlitArrived(1, Port::West, flit, false, 7);
    auditor.onFlitEjected(1, flit, 8); // dst is 3, not 1
    EXPECT_EQ(auditor.countOf(AuditKind::Conservation), 1u);
}

} // namespace
} // namespace noc
