/**
 * @file
 * Integration tests for the assembled LOFT network: end-to-end
 * delivery, reassembly under speculative (out-of-order) switching,
 * drain, flow registration rules, and mechanism counters.
 */

#include <gtest/gtest.h>

#include "core/loft_network.hh"
#include "sim/simulator.hh"
#include "traffic/generator.hh"
#include "traffic/pattern.hh"

namespace noc
{
namespace
{

/** Small, fast LOFT configuration for 4x4 integration tests. */
LoftParams
smallLoft()
{
    LoftParams p;
    p.frameSizeFlits = 64;
    p.windowFrames = 2;
    p.quantumFlits = 2;
    p.centralBufferFlits = 64;
    p.specBufferFlits = 8;
    p.maxFlows = 16;
    p.sourceQueueFlits = 32;
    return p;
}

Packet
makePacket(PacketId id, const FlowSpec &f, Cycle now,
           std::uint32_t size = 4)
{
    Packet p;
    p.id = id;
    p.flow = f.id;
    p.src = f.src;
    p.dst = f.dst;
    p.sizeFlits = size;
    p.createdAt = now;
    p.enqueuedAt = now;
    return p;
}

class LoftNetTest : public ::testing::Test
{
  protected:
    LoftNetTest() : mesh_(4, 4) {}

    void
    build(const std::vector<FlowSpec> &flows,
          LoftParams params = smallLoft())
    {
        flows_ = flows;
        net_ = std::make_unique<LoftNetwork>(mesh_, params);
        net_->registerFlows(flows);
        net_->attach(sim_);
        net_->metrics().startMeasurement(0);
    }

    FlowSpec
    flow(FlowId id, NodeId src, NodeId dst, double share = 0.25)
    {
        FlowSpec f;
        f.id = id;
        f.src = src;
        f.dst = dst;
        f.bwShare = share;
        return f;
    }

    Mesh2D mesh_;
    std::unique_ptr<LoftNetwork> net_;
    std::vector<FlowSpec> flows_;
    Simulator sim_;
};

TEST_F(LoftNetTest, SinglePacketDelivered)
{
    build({flow(0, 0, 15)});
    ASSERT_TRUE(net_->inject(makePacket(1, flows_[0], 0)));
    EXPECT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 1; }, 1000));
    EXPECT_EQ(net_->metrics().flow(0).flitsEjected, 4u);
    EXPECT_EQ(net_->totalAnomalyViolations(), 0u);
}

TEST_F(LoftNetTest, NetworkDrainsCompletely)
{
    build({flow(0, 0, 15), flow(1, 3, 12)});
    PacketId id = 1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(net_->inject(makePacket(id++, flows_[0], 0)));
        ASSERT_TRUE(net_->inject(makePacket(id++, flows_[1], 0)));
    }
    EXPECT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 16; }, 4000));
    sim_.run(50); // let credits settle
    EXPECT_EQ(net_->flitsInFlight(), 0u);
}

TEST_F(LoftNetTest, OddPacketSizeUsesShortTailQuantum)
{
    build({flow(0, 1, 14)});
    ASSERT_TRUE(net_->inject(makePacket(1, flows_[0], 0, 5)));
    EXPECT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 1; }, 1000));
    EXPECT_EQ(net_->metrics().flow(0).flitsEjected, 5u);
}

TEST_F(LoftNetTest, SingleFlitPackets)
{
    build({flow(0, 5, 10)});
    for (PacketId id = 1; id <= 6; ++id)
        ASSERT_TRUE(net_->inject(makePacket(id, flows_[0], 0, 1)));
    EXPECT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 6; }, 1000));
}

TEST_F(LoftNetTest, ManyFlowsAllDeliver)
{
    std::vector<FlowSpec> flows;
    for (FlowId f = 0; f < 16; ++f)
        flows.push_back(flow(f, f, 15 - f, 1.0 / 16));
    build(flows);
    PacketId id = 1;
    for (int round = 0; round < 4; ++round)
        for (auto &f : flows)
            ASSERT_TRUE(net_->inject(makePacket(id++, f, 0)));
    EXPECT_TRUE(sim_.runUntil(
        [&] { return net_->metrics().totalPackets() == 64; }, 8000));
    EXPECT_EQ(net_->totalAnomalyViolations(), 0u);
}

TEST_F(LoftNetTest, UncontendedFlowStreamsNearLinkRate)
{
    // The stripped-node property (Fig. 13): a single flow with a small
    // reservation still achieves near-full link throughput thanks to
    // speculative switching and local status reset.
    build({flow(0, 5, 6, 1.0 / 16)});
    TrafficGenerator gen(*net_, 4, 1);
    std::vector<FlowRate> rates(1);
    rates[0].flitsPerCycle = 0.95;
    gen.configure(flows_, rates);
    sim_.add(&gen);
    sim_.run(3000);
    net_->metrics().stopMeasurement(sim_.now());
    EXPECT_GT(net_->metrics().flowThroughput(0), 0.75);
    EXPECT_GT(net_->totalLocalResets(), 0u);
}

TEST_F(LoftNetTest, SpeculativeSwitchingReducesLatency)
{
    auto run_once = [&](bool speculative) {
        LoftParams p = smallLoft();
        p.speculativeSwitching = speculative;
        p.specBufferFlits = speculative ? 8 : 0;
        Simulator sim;
        LoftNetwork net(mesh_, p);
        auto f = flow(0, 0, 15);
        net.registerFlows({f});
        net.attach(sim);
        net.metrics().startMeasurement(0);
        net.inject(makePacket(1, f, 0));
        sim.runUntil(
            [&] { return net.metrics().totalPackets() == 1; }, 4000);
        return net.metrics().flow(0).packetLatency.mean();
    };
    const double with_spec = run_once(true);
    const double without = run_once(false);
    EXPECT_GT(with_spec, 0.0);
    EXPECT_GT(without, 0.0);
    EXPECT_LT(with_spec, without);
}

TEST_F(LoftNetTest, ReservationsOverbookingALinkIsFatal)
{
    std::vector<FlowSpec> flows;
    // Nine flows, each reserving 1/8 of the same ejection link.
    for (FlowId f = 0; f < 9; ++f)
        flows.push_back(flow(f, f, 15, 1.0 / 8));
    EXPECT_EXIT(build(flows), ::testing::ExitedWithCode(1), "sum R > F");
}

TEST_F(LoftNetTest, ReservationOfSharesScalesWithFrame)
{
    build({flow(0, 0, 15)});
    FlowSpec f;
    f.bwShare = 0.5;
    EXPECT_EQ(net_->reservationOf(f), 32u);
    f.bwShare = 0.001; // floors at one quantum
    EXPECT_EQ(net_->reservationOf(f), 2u);
}

TEST_F(LoftNetTest, BoundedSourceQueueBackpressures)
{
    build({flow(0, 0, 15)});
    PacketId id = 1;
    int accepted = 0;
    while (net_->canInject(0) && accepted < 100) {
        ASSERT_TRUE(net_->inject(makePacket(id++, flows_[0], 0)));
        ++accepted;
    }
    EXPECT_EQ(accepted, 8); // 32-flit queue / 4-flit packets
}

TEST_F(LoftNetTest, MechanismCountersMove)
{
    build({flow(0, 0, 15)});
    TrafficGenerator gen(*net_, 4, 2);
    std::vector<FlowRate> rates(1);
    rates[0].flitsPerCycle = 0.5;
    gen.configure(flows_, rates);
    sim_.add(&gen);
    sim_.run(2000);
    EXPECT_GT(net_->totalSpeculativeForwards(), 0u);
    EXPECT_GT(net_->totalLocalResets(), 0u);
    EXPECT_EQ(net_->totalAnomalyViolations(), 0u);
}

} // namespace
} // namespace noc
