/**
 * @file
 * Smoke tests for the experiment harness used by the benches.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.hh"
#include "qos/allocation.hh"

namespace noc
{
namespace
{

RunConfig
fastConfig(NetKind kind)
{
    RunConfig c;
    c.kind = kind;
    c.meshWidth = 4;
    c.meshHeight = 4;
    c.warmupCycles = 500;
    c.measureCycles = 1500;
    c.loft.frameSizeFlits = 64;
    c.loft.centralBufferFlits = 64;
    c.loft.specBufferFlits = 8;
    c.loft.maxFlows = 16;
    c.loft.sourceQueueFlits = 32;
    c.gsf.frameSizeFlits = 200;
    c.gsf.sourceQueueFlits = 200;
    return c;
}

TrafficPattern
neighborFlows(const Mesh2D &mesh)
{
    TrafficPattern p = neighborPattern(mesh);
    setEqualSharesByMaxFlows(p.flows, 16);
    return p;
}

TEST(Harness, LoftRunProducesTraffic)
{
    auto c = fastConfig(NetKind::Loft);
    Mesh2D mesh(4, 4);
    const auto r = runExperiment(c, neighborFlows(mesh), 0.1);
    EXPECT_GT(r.totalPackets, 0u);
    EXPECT_NEAR(r.networkThroughput, 0.1, 0.03);
    EXPECT_GT(r.avgPacketLatency, 0.0);
    EXPECT_EQ(r.anomalyViolations, 0u);
    EXPECT_EQ(r.flowThroughput.size(), 16u);
}

TEST(Harness, GsfRunProducesTraffic)
{
    auto c = fastConfig(NetKind::Gsf);
    Mesh2D mesh(4, 4);
    const auto r = runExperiment(c, neighborFlows(mesh), 0.1);
    EXPECT_GT(r.totalPackets, 0u);
    EXPECT_NEAR(r.networkThroughput, 0.1, 0.03);
    EXPECT_GT(r.frameRecycles, 0u);
}

TEST(Harness, WormholeRunProducesTraffic)
{
    auto c = fastConfig(NetKind::Wormhole);
    Mesh2D mesh(4, 4);
    const auto r = runExperiment(c, neighborFlows(mesh), 0.1);
    EXPECT_GT(r.totalPackets, 0u);
    EXPECT_NEAR(r.networkThroughput, 0.1, 0.03);
}

TEST(Harness, DeterministicForSameSeed)
{
    auto c = fastConfig(NetKind::Loft);
    Mesh2D mesh(4, 4);
    const auto a = runExperiment(c, neighborFlows(mesh), 0.2);
    const auto b = runExperiment(c, neighborFlows(mesh), 0.2);
    EXPECT_EQ(a.totalFlits, b.totalFlits);
    EXPECT_DOUBLE_EQ(a.avgPacketLatency, b.avgPacketLatency);
}

TEST(Harness, SeedChangesOutcome)
{
    auto c = fastConfig(NetKind::Loft);
    Mesh2D mesh(4, 4);
    const auto a = runExperiment(c, neighborFlows(mesh), 0.2);
    c.seed = 999;
    const auto b = runExperiment(c, neighborFlows(mesh), 0.2);
    EXPECT_NE(a.totalFlits, b.totalFlits);
}

TEST(Harness, PerFlowRatesRespected)
{
    auto c = fastConfig(NetKind::Loft);
    Mesh2D mesh(4, 4);
    auto p = neighborFlows(mesh);
    auto rates = uniformRates(p.flows.size(), 0.0);
    rates[3].flitsPerCycle = 0.2;
    const auto r = runExperiment(c, p, rates);
    EXPECT_NEAR(r.flowThroughput[3], 0.2, 0.05);
    EXPECT_DOUBLE_EQ(r.flowThroughput[0], 0.0);
}

TEST(Harness, EnvScaleShortensRuns)
{
    RunConfig c;
    c.warmupCycles = 1000;
    c.measureCycles = 1000;
    setenv("LOFT_SIM_SCALE", "0.5", 1);
    c.applyEnvScale();
    unsetenv("LOFT_SIM_SCALE");
    EXPECT_EQ(c.warmupCycles, 500u);
    EXPECT_EQ(c.measureCycles, 500u);
}

} // namespace
} // namespace noc
