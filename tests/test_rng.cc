/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace noc
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, RandRangeStaysInBounds)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.randRange(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, RandRangeCoversAllValues)
{
    Rng r(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[r.randRange(8)];
    for (int count : seen)
        EXPECT_GT(count, 0);
}

TEST(Rng, RandDoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.randDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, RandDoubleMeanNearHalf)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.randDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-1.0));
        EXPECT_TRUE(r.chance(2.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // namespace
} // namespace noc
