/**
 * @file
 * Command-line simulator driver: the general-purpose front end to the
 * whole library. Configure the network (LOFT / GSF / wormhole), a
 * traffic pattern, reservations, and run lengths from key=value
 * arguments or a config file; results are printed as text, CSV, or
 * JSON.
 *
 * Usage examples:
 *   loft_sim net=loft pattern=hotspot rate=0.5
 *   loft_sim net=gsf pattern=uniform rate=0.3 format=json
 *   loft_sim config=run.cfg   # same keys, one per line
 *
 * Keys (defaults in parentheses):
 *   config           path of a config file to load first
 *   net              loft | gsf | wormhole            (loft)
 *   pattern          uniform | hotspot | transpose | bitcomp |
 *                    neighbor | tornado | shuffle |
 *                    dos | pathological               (uniform)
 *   rate             offered load, flits/cycle/node   (0.2)
 *   hotspot          hotspot node id                  (63)
 *   width, height    mesh dimensions                  (8, 8)
 *   packet           packet size in flits             (4)
 *   warmup, measure  run lengths in cycles            (5000, 10000)
 *   seed             RNG seed                         (1)
 *   share            per-flow bandwidth share         (1/64)
 *   format           text | csv | json                (text)
 *   flows            also print the per-flow table    (false)
 *   spec             LOFT speculative buffer, flits   (12)
 *   frame            LOFT frame size F, flits         (256)
 *   window           LOFT frame window WF             (2)
 *   speculative, reset, guard   LOFT mechanism toggles (true)
 *   gsf_frame, gsf_window, gsf_barrier, gsf_queue     GSF knobs
 */

#include <algorithm>
#include <cstdio>

#include "harness/experiment.hh"
#include "qos/allocation.hh"
#include "sim/config.hh"
#include "sim/report.hh"

namespace
{

using namespace noc;

TrafficPattern
makePattern(const Config &cfg, const Mesh2D &mesh)
{
    const std::string name = cfg.getString("pattern", "uniform");
    const NodeId hotspot = static_cast<NodeId>(
        cfg.getUInt("hotspot", mesh.numNodes() - 1));
    if (name == "uniform")
        return uniformPattern(mesh);
    if (name == "hotspot")
        return hotspotPattern(mesh, hotspot);
    if (name == "transpose")
        return transposePattern(mesh);
    if (name == "bitcomp")
        return bitComplementPattern(mesh);
    if (name == "neighbor")
        return neighborPattern(mesh);
    if (name == "tornado")
        return tornadoPattern(mesh);
    if (name == "shuffle")
        return shufflePattern(mesh);
    if (name == "dos")
        return dosPattern(mesh);
    if (name == "pathological")
        return pathologicalPattern(mesh);
    fatal("unknown pattern '%s'", name.c_str());
}

NetKind
makeKind(const Config &cfg)
{
    const std::string name = cfg.getString("net", "loft");
    if (name == "loft")
        return NetKind::Loft;
    if (name == "gsf")
        return NetKind::Gsf;
    if (name == "wormhole")
        return NetKind::Wormhole;
    fatal("unknown network '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace noc;

    Config cfg;
    cfg.parseArgs(argc, argv);
    if (cfg.has("config"))
        cfg.parseFile(cfg.getString("config", ""));

    RunConfig run;
    run.kind = makeKind(cfg);
    run.meshWidth =
        static_cast<std::uint32_t>(cfg.getUInt("width", 8));
    run.meshHeight =
        static_cast<std::uint32_t>(cfg.getUInt("height", 8));
    run.packetSizeFlits =
        static_cast<std::uint32_t>(cfg.getUInt("packet", 4));
    run.warmupCycles = cfg.getUInt("warmup", 5000);
    run.measureCycles = cfg.getUInt("measure", 10000);
    run.seed = cfg.getUInt("seed", 1);

    run.loft.specBufferFlits =
        static_cast<std::uint32_t>(cfg.getUInt("spec", 12));
    run.loft.frameSizeFlits =
        static_cast<std::uint32_t>(cfg.getUInt("frame", 256));
    run.loft.windowFrames =
        static_cast<std::uint32_t>(cfg.getUInt("window", 2));
    run.loft.centralBufferFlits = static_cast<std::uint32_t>(
        cfg.getUInt("central", run.loft.frameSizeFlits));
    run.loft.speculativeSwitching =
        cfg.getBool("speculative", true);
    run.loft.localStatusReset = cfg.getBool("reset", true);
    run.loft.anomalyGuard = cfg.getBool("guard", true);

    run.gsf.frameSizeFlits = static_cast<std::uint32_t>(
        cfg.getUInt("gsf_frame", 2000));
    run.gsf.windowFrames =
        static_cast<std::uint32_t>(cfg.getUInt("gsf_window", 6));
    run.gsf.barrierDelay = cfg.getUInt("gsf_barrier", 16);
    run.gsf.sourceQueueFlits = cfg.getUInt("gsf_queue", 2000);

    run.applyEnvScale();

    Mesh2D mesh(run.meshWidth, run.meshHeight);
    TrafficPattern pattern = makePattern(cfg, mesh);

    const double default_share = 1.0 / 64.0;
    const double share = cfg.getDouble("share", default_share);
    // The DoS pattern carries the paper's prescribed 1/4 shares.
    if (cfg.getString("pattern", "uniform") != "dos" ||
        cfg.has("share")) {
        setEqualShares(pattern.flows, share);
    }
    if (!validateShares(pattern.flows, mesh))
        fatal("share=%g oversubscribes a link for this pattern", share);

    const double rate = cfg.getDouble("rate", 0.2);
    const std::string format = cfg.getString("format", "text");
    const bool per_flow = cfg.getBool("flows", false);
    const bool show_links = cfg.getBool("links", false);

    const auto unused = cfg.unusedKeys();
    for (const auto &k : unused) {
        if (k != "config")
            fatal("unknown option '%s'", k.c_str());
    }

    const RunResult r = runExperiment(run, pattern, rate);

    ReportTable summary(
        "loft_sim summary",
        {"metric", "value"});
    summary.addRow({std::string("network"),
                    cfg.getString("net", "loft")});
    summary.addRow({std::string("pattern"),
                    cfg.getString("pattern", "uniform")});
    summary.addRow({std::string("offered (flits/cycle/node)"), rate});
    summary.addRow({std::string("accepted (flits/cycle/node)"),
                    r.networkThroughput});
    summary.addRow({std::string("avg latency (cycles)"),
                    r.avgPacketLatency});
    summary.addRow({std::string("p50 latency"), r.p50PacketLatency});
    summary.addRow({std::string("p95 latency"), r.p95PacketLatency});
    summary.addRow({std::string("p99 latency"), r.p99PacketLatency});
    summary.addRow({std::string("max latency"), r.maxPacketLatency});
    summary.addRow({std::string("packets delivered"),
                    static_cast<std::int64_t>(r.totalPackets)});
    summary.addRow({std::string("speculative forwards"),
                    static_cast<std::int64_t>(r.speculativeForwards)});
    summary.addRow({std::string("local resets"),
                    static_cast<std::int64_t>(r.localResets)});
    summary.addRow({std::string("anomaly violations"),
                    static_cast<std::int64_t>(r.anomalyViolations)});
    summary.addRow({std::string("gsf frame recycles"),
                    static_cast<std::int64_t>(r.frameRecycles)});
    summary.write(stdout, format);

    if (show_links && !r.linkUtilization.empty()) {
        // The ten busiest links of the run.
        std::vector<std::size_t> idx(r.linkUtilization.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](auto a, auto b) {
            return r.linkUtilization[a] > r.linkUtilization[b];
        });
        ReportTable links("busiest links", {"node", "port", "util"});
        for (std::size_t i = 0; i < idx.size() && i < 10; ++i) {
            const std::size_t l = idx[i];
            links.addRow({static_cast<std::int64_t>(l / kNumPorts),
                          std::string(portName(
                              static_cast<Port>(l % kNumPorts))),
                          r.linkUtilization[l]});
        }
        links.write(stdout, format);
    }

    if (per_flow) {
        ReportTable flows("per-flow results",
                          {"flow", "src", "dst", "share",
                           "throughput", "avg latency"});
        for (std::size_t i = 0; i < pattern.flows.size(); ++i) {
            const FlowSpec &f = pattern.flows[i];
            flows.addRow({static_cast<std::int64_t>(f.id),
                          static_cast<std::int64_t>(f.src),
                          f.randomDst()
                              ? ReportCell{std::string("random")}
                              : ReportCell{static_cast<std::int64_t>(
                                    f.dst)},
                          f.bwShare, r.flowThroughput[i],
                          r.flowAvgLatency[i]});
        }
        flows.write(stdout, format);
    }
    return r.anomalyViolations == 0 ? 0 : 1;
}
