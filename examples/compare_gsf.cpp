/**
 * @file
 * Side-by-side comparison of LOFT and GSF on the same workload: the
 * scenario the paper's evaluation revolves around. Prints latency,
 * accepted throughput and mechanism counters for both networks on
 * uniform and hotspot traffic at a chosen load.
 *
 * Usage: compare_gsf [rate_flits_per_cycle]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "qos/allocation.hh"

namespace
{

void
runBoth(const char *label, const noc::TrafficPattern &pattern, double rate)
{
    using namespace noc;
    std::printf("== %s traffic, offered %.3f flits/cycle/node ==\n",
                label, rate);
    for (NetKind kind : {NetKind::Loft, NetKind::Gsf}) {
        RunConfig config;
        config.kind = kind;
        config.warmupCycles = 10000;
        config.measureCycles = 20000;
        config.applyEnvScale();
        const RunResult r = runExperiment(config, pattern, rate);
        std::printf("  %-5s latency %8.1f cyc   throughput %7.4f "
                    "flits/cycle/node   packets %llu\n",
                    kind == NetKind::Loft ? "LOFT" : "GSF",
                    r.avgPacketLatency, r.networkThroughput,
                    static_cast<unsigned long long>(r.totalPackets));
        if (kind == NetKind::Loft) {
            std::printf("        spec fwds %llu, local resets %llu, "
                        "violations %llu\n",
                        static_cast<unsigned long long>(
                            r.speculativeForwards),
                        static_cast<unsigned long long>(r.localResets),
                        static_cast<unsigned long long>(
                            r.anomalyViolations));
        } else {
            std::printf("        frame recycles %llu\n",
                        static_cast<unsigned long long>(r.frameRecycles));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace noc;
    const double rate = argc > 1 ? std::atof(argv[1]) : 0.30;

    Mesh2D mesh(8, 8);

    TrafficPattern uni = uniformPattern(mesh);
    setEqualSharesByMaxFlows(uni.flows, 64);
    runBoth("uniform", uni, rate);

    TrafficPattern hot = hotspotPattern(mesh, 63);
    setEqualSharesByMaxFlows(hot.flows, 64);
    runBoth("hotspot", hot, rate);
    return 0;
}
