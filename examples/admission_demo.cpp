/**
 * @file
 * Online admission-control demo: a stream of QoS requests (random
 * source/destination/bandwidth) is admitted or rejected against the
 * per-link LSF budgets; admitted flows then actually run on a LOFT
 * network and each one's measured throughput and worst latency are
 * checked against its contract (reserved rate, delay bound).
 *
 * Usage: admission_demo [num_requests]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "qos/admission.hh"
#include "sim/rng.hh"

int
main(int argc, char **argv)
{
    using namespace noc;

    const int requests = argc > 1 ? std::atoi(argv[1]) : 40;

    RunConfig config;
    config.kind = NetKind::Loft;
    config.warmupCycles = 4000;
    config.measureCycles = 8000;
    config.applyEnvScale();

    Mesh2D mesh(config.meshWidth, config.meshHeight);
    AdmissionController ac(mesh, config.loft);
    Rng rng(7);

    TrafficPattern pattern;
    std::vector<Cycle> bounds;
    int rejected = 0;
    for (int i = 0; i < requests; ++i) {
        FlowSpec f;
        f.id = static_cast<FlowId>(pattern.flows.size());
        f.src = static_cast<NodeId>(rng.randRange(mesh.numNodes()));
        do {
            f.dst =
                static_cast<NodeId>(rng.randRange(mesh.numNodes()));
        } while (f.dst == f.src);
        // Request between 1/32 and 1/4 of a link.
        f.bwShare = (1.0 + rng.randRange(7)) / 32.0;
        const auto adm = ac.admit(f);
        if (!adm) {
            ++rejected;
            continue;
        }
        pattern.flows.push_back(f);
        pattern.groups.push_back(0);
        bounds.push_back(adm->delayBound);
    }
    pattern.groupNames = {"admitted"};

    std::printf("admission: %zu of %d requests admitted "
                "(%d rejected by per-link budgets)\n\n",
                pattern.flows.size(), requests, rejected);

    // Run the admitted set, each flow injecting at its reserved rate.
    std::vector<FlowRate> rates(pattern.flows.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        rates[i].flitsPerCycle = pattern.flows[i].bwShare;
        rates[i].process = InjectionProcess::Periodic;
    }
    const RunResult r = runExperiment(config, pattern, rates);

    int contract_met = 0;
    for (std::size_t i = 0; i < pattern.flows.size(); ++i) {
        const bool throughput_ok =
            r.flowThroughput[i] >= 0.9 * pattern.flows[i].bwShare;
        const bool latency_ok =
            r.flowMaxLatency[i] <= static_cast<double>(bounds[i]);
        if (throughput_ok && latency_ok)
            ++contract_met;
        else
            std::printf("  flow %2zu (%2u->%2u share %.3f): thr %.4f "
                        "worst-lat %.0f bound %llu%s%s\n", i,
                        pattern.flows[i].src, pattern.flows[i].dst,
                        pattern.flows[i].bwShare, r.flowThroughput[i],
                        r.flowMaxLatency[i],
                        static_cast<unsigned long long>(bounds[i]),
                        throughput_ok ? "" : "  [thr miss]",
                        latency_ok ? "" : "  [lat miss]");
    }
    std::printf("contracts met: %d / %zu admitted flows "
                "(reserved rate and delay bound)\n", contract_met,
                pattern.flows.size());
    return contract_met == static_cast<int>(pattern.flows.size()) ? 0
                                                                  : 1;
}
