/**
 * @file
 * Trace-driven simulation demo: synthesize a bursty application trace
 * (a compute/communicate phase pattern), save it, reload it, and
 * replay it on LOFT and on GSF, comparing completion time and tail
 * latency. Shows the Trace / TraceReplayer API a user would feed real
 * application logs through.
 *
 * Usage: trace_replay [trace_file]
 */

#include <cstdio>

#include "core/loft_network.hh"
#include "gsf/gsf_network.hh"
#include "sim/simulator.hh"
#include "traffic/trace.hh"

namespace
{

using namespace noc;

/** A 3-phase "stencil exchange" style trace on a 4x4 mesh. */
Trace
synthesizeTrace(const Mesh2D &mesh)
{
    Trace t;
    std::vector<FlowSpec> flows;
    // Each node exchanges with its nearest neighbour.
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        FlowSpec f;
        f.id = n;
        f.src = n;
        f.dst = mesh.nearestNeighbor(n);
        flows.push_back(f);
    }
    // Three communication phases separated by compute gaps.
    for (Cycle phase = 0; phase < 3; ++phase) {
        const Cycle base = phase * 400;
        for (Cycle burst = 0; burst < 6; ++burst) {
            for (const auto &f : flows)
                t.add(TraceEvent{base + burst * 8, f.src, f.dst, f.id,
                                 4});
        }
    }
    return t;
}

template <typename Net>
void
replayOn(const char *name, Net &net, const Trace &trace)
{
    auto flows = trace.flowTable();
    for (auto &f : flows)
        f.bwShare = 1.0 / 16;
    net.registerFlows(flows);

    TraceReplayer replayer(net, trace);
    Simulator sim;
    sim.add(&replayer);
    net.attach(sim);
    net.metrics().startMeasurement(0);

    const bool done = sim.runUntil(
        [&] {
            return replayer.done() &&
                   net.metrics().totalFlits() == trace.totalFlits();
        },
        100000);
    net.metrics().stopMeasurement(sim.now());
    if (!done)
        fatal("trace replay did not finish");
    std::printf("  %-5s completion %6llu cycles   avg latency %6.1f   "
                "p99 %6.1f\n", name,
                static_cast<unsigned long long>(sim.now()),
                net.metrics().avgPacketLatency(),
                net.metrics().packetLatencyPercentile(0.99));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace noc;

    Mesh2D mesh(4, 4);
    Trace trace = synthesizeTrace(mesh);

    // Round-trip through a file, as a real workload log would.
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/loft_stencil.trace";
    trace.save(path);
    trace = Trace::load(path);
    std::printf("trace: %zu packets, %llu flits, file %s\n\n",
                trace.size(),
                static_cast<unsigned long long>(trace.totalFlits()),
                path.c_str());

    {
        LoftParams p;
        p.frameSizeFlits = 64;
        p.centralBufferFlits = 64;
        p.maxFlows = 16;
        LoftNetwork net(mesh, p);
        replayOn("LOFT", net, trace);
    }
    {
        GsfParams p;
        p.frameSizeFlits = 200;
        p.sourceQueueFlits = 200;
        GsfNetwork net(mesh, p);
        replayOn("GSF", net, trace);
    }
    return 0;
}
