/**
 * @file
 * Quickstart: build an 8x8 LOFT mesh, run uniform traffic with equal
 * QoS reservations, and print latency/throughput plus the LOFT-specific
 * mechanism counters.
 *
 * Usage: quickstart [injection_rate_flits_per_cycle]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "qos/allocation.hh"

int
main(int argc, char **argv)
{
    using namespace noc;

    const double rate = argc > 1 ? std::atof(argv[1]) : 0.10;

    RunConfig config;
    config.kind = NetKind::Loft;
    config.warmupCycles = 5000;
    config.measureCycles = 10000;
    config.applyEnvScale();

    Mesh2D mesh(config.meshWidth, config.meshHeight);
    TrafficPattern pattern = uniformPattern(mesh);
    setEqualSharesByMaxFlows(pattern.flows, config.loft.maxFlows);
    if (!validateShares(pattern.flows, mesh))
        fatal("reservations oversubscribe a link");

    std::printf("LOFT quickstart: 8x8 mesh, uniform traffic, "
                "rate %.3f flits/cycle/node\n", rate);
    const RunResult r = runExperiment(config, pattern, rate);

    std::printf("  avg packet latency : %8.1f cycles\n",
                r.avgPacketLatency);
    std::printf("  max packet latency : %8.1f cycles\n",
                r.maxPacketLatency);
    std::printf("  accepted throughput: %8.4f flits/cycle/node\n",
                r.networkThroughput);
    std::printf("  packets delivered  : %8llu\n",
                static_cast<unsigned long long>(r.totalPackets));
    std::printf("  speculative fwds   : %8llu\n",
                static_cast<unsigned long long>(r.speculativeForwards));
    std::printf("  emergent fwds      : %8llu\n",
                static_cast<unsigned long long>(r.emergentForwards));
    std::printf("  local resets       : %8llu\n",
                static_cast<unsigned long long>(r.localResets));
    std::printf("  anomaly violations : %8llu (must be 0, Theorem I)\n",
                static_cast<unsigned long long>(r.anomalyViolations));
    return r.anomalyViolations == 0 ? 0 : 1;
}
