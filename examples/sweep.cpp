/**
 * @file
 * Load-sweep tool: run a pattern across a range of offered loads on
 * one or more networks and emit the latency/throughput series as CSV
 * (ready for plotting) — the workflow behind Fig. 11-style curves.
 *
 * Usage examples:
 *   sweep pattern=uniform nets=loft,gsf loads=0.05:0.45:0.1
 *   sweep pattern=hotspot nets=loft spec=16 format=text threads=4
 *
 * Keys: pattern, nets (comma list of loft|gsf|wormhole),
 *       loads (min:max:step), threads (0 = all cores; output is
 *       bit-identical at any thread count), plus every loft_sim
 *       network knob.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "qos/allocation.hh"
#include "sim/config.hh"
#include "sim/report.hh"

namespace
{

using namespace noc;

std::vector<double>
parseLoads(const std::string &spec)
{
    double lo = 0.05, hi = 0.45, step = 0.1;
    if (std::sscanf(spec.c_str(), "%lf:%lf:%lf", &lo, &hi, &step) != 3)
        fatal("loads must be min:max:step, got '%s'", spec.c_str());
    if (step <= 0.0 || lo > hi)
        fatal("bad load range");
    std::vector<double> out;
    for (double l = lo; l <= hi + 1e-9; l += step)
        out.push_back(l);
    return out;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string tok = s.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!tok.empty())
            out.push_back(tok);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace noc;

    Config cfg;
    cfg.parseArgs(argc, argv);

    const auto loads = parseLoads(cfg.getString("loads", "0.05:0.45:0.1"));
    const auto nets = splitList(cfg.getString("nets", "loft,gsf"));
    const std::string format = cfg.getString("format", "csv");
    const std::string pattern_name =
        cfg.getString("pattern", "uniform");

    RunConfig base;
    base.warmupCycles = cfg.getUInt("warmup", 5000);
    base.measureCycles = cfg.getUInt("measure", 10000);
    base.seed = cfg.getUInt("seed", 1);
    base.loft.specBufferFlits =
        static_cast<std::uint32_t>(cfg.getUInt("spec", 12));
    base.applyEnvScale();

    Mesh2D mesh(base.meshWidth, base.meshHeight);
    TrafficPattern pattern;
    if (pattern_name == "uniform")
        pattern = uniformPattern(mesh);
    else if (pattern_name == "hotspot")
        pattern = hotspotPattern(mesh, mesh.numNodes() - 1);
    else if (pattern_name == "transpose")
        pattern = transposePattern(mesh);
    else if (pattern_name == "tornado")
        pattern = tornadoPattern(mesh);
    else if (pattern_name == "neighbor")
        pattern = neighborPattern(mesh);
    else
        fatal("sweep: unknown pattern '%s'", pattern_name.c_str());
    setEqualSharesByMaxFlows(pattern.flows, base.loft.maxFlows);

    ReportTable table(
        "sweep: " + pattern_name,
        {"net", "offered", "accepted", "avg_latency", "p95_latency",
         "p99_latency"});

    // Cases run on the parallel sweep engine (kind-major, load-minor
    // expansion matches the row order of the old serial loop, and the
    // results are bit-identical at any thread count).
    SweepConfig sc;
    sc.base = base;
    sc.loads = loads;
    sc.threads = static_cast<unsigned>(cfg.getUInt("threads", 0));
    for (const std::string &net : nets) {
        if (net == "loft")
            sc.kinds.push_back(NetKind::Loft);
        else if (net == "gsf")
            sc.kinds.push_back(NetKind::Gsf);
        else if (net == "wormhole")
            sc.kinds.push_back(NetKind::Wormhole);
        else
            fatal("sweep: unknown net '%s'", net.c_str());
    }
    const SweepResults sweep =
        runSweep(sc, [&](const SweepCase &) { return pattern; });
    for (std::size_t i = 0; i < sweep.cases.size(); ++i) {
        const SweepCase &cs = sweep.cases[i];
        const RunResult &r = sweep.results[i];
        table.addRow({nets[cs.index / loads.size()], cs.load,
                      r.networkThroughput, r.avgPacketLatency,
                      r.p95PacketLatency, r.p99PacketLatency});
    }
    table.write(stdout, format);
    return 0;
}
