/**
 * @file
 * The Fig. 1 pathological scenario (Case Study II): grey nodes on the
 * first column flood the centre of the mesh while a stripped node
 * sends one hop over links no grey flow uses. GSF's global frame
 * recycling throttles the stripped node together with the greys; LOFT
 * isolates the lightly loaded region and lets the stripped node use
 * nearly the full link.
 *
 * Usage: pathological_case [injection_rate]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "qos/allocation.hh"

int
main(int argc, char **argv)
{
    using namespace noc;

    const double rate = argc > 1 ? std::atof(argv[1]) : 0.95;

    Mesh2D mesh(8, 8);
    TrafficPattern pattern = pathologicalPattern(mesh);
    setEqualSharesByMaxFlows(pattern.flows, 64);

    std::printf("Fig. 1 pathological pattern at %.2f flits/cycle/node "
                "(equal 1/64 reservations, no traffic knowledge)\n\n",
                rate);

    for (NetKind kind : {NetKind::Gsf, NetKind::Loft}) {
        RunConfig config;
        config.kind = kind;
        config.warmupCycles = 5000;
        config.measureCycles = 10000;
        config.applyEnvScale();
        const RunResult r = runExperiment(config, pattern, rate);
        double grey = 0.0, stripped = 0.0;
        int greys = 0;
        for (std::size_t i = 0; i < pattern.flows.size(); ++i) {
            if (pattern.groups[i] == 0) {
                grey += r.flowThroughput[i];
                ++greys;
            } else {
                stripped = r.flowThroughput[i];
            }
        }
        std::printf("%-5s grey avg %7.4f   stripped %7.4f "
                    "flits/cycle  -> stripped keeps %4.0f%% of its "
                    "offered rate\n",
                    kind == NetKind::Loft ? "LOFT" : "GSF",
                    grey / greys, stripped, 100.0 * stripped / rate);
    }
    std::printf("\nexpected: GSF throttles the stripped node with the "
                "greys; LOFT isolates it.\n");
    return 0;
}
