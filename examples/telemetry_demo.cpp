/**
 * @file
 * Telemetry walkthrough on the paper's Case Study I (Fig. 12 DoS
 * scenario): nodes 0 (regulated victim), 48 and 56 (aggressors) attack
 * hotspot 63 on an 8x8 LOFT mesh. The run is instrumented with the
 * TelemetryCollector *and* the NetworkAuditor at once (composed via
 * ObserverMux) and exports
 *
 *   telemetry_trace.json      Chrome trace-event JSON; open with
 *                             https://ui.perfetto.dev or
 *                             chrome://tracing
 *   telemetry_timeseries.csv  per-epoch, per-router-port counters
 *   telemetry_heatmap.csv     8x8 per-node link-utilization grid
 *
 * into the directory given as argv[1] (default: current directory).
 * The demo also measures its own observer overhead with three timed
 * runs of the same seed: bare (no observers), audit-only (the harness
 * default), and audit + telemetry through the mux. The telemetry
 * overhead — instrumented vs audit-only — is expected under 10%; the
 * demo exits non-zero if it is not, or if the instrumented run's
 * metrics are not bit-identical to the bare run's (telemetry must be
 * passive).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hh"
#include "sim/report.hh"

namespace
{

using namespace noc;

RunConfig
dosConfig()
{
    RunConfig c;
    c.kind = NetKind::Loft;
    c.warmupCycles = 5000;
    c.measureCycles = 10000;
    c.applyEnvScale();
    return c;
}

double
timedRun(const RunConfig &config, const TrafficPattern &pattern,
         const std::vector<FlowRate> &rates, RunResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out = runExperiment(config, pattern, rates);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Time two configurations with @p reps interleaved repetitions each
 * (A B A B ...) and keep the per-config minimum: interleaving cancels
 * slow machine drift between the two measurements, and the runs are
 * deterministic so only timing noise varies across repetitions.
 */
void
timeInterleaved(int reps, const RunConfig &a, const RunConfig &b,
                const TrafficPattern &pattern,
                const std::vector<FlowRate> &rates, RunResult &out_a,
                RunResult &out_b, double &best_a, double &best_b)
{
    best_a = timedRun(a, pattern, rates, out_a);
    best_b = timedRun(b, pattern, rates, out_b);
    for (int i = 1; i < reps; ++i) {
        RunResult scratch;
        best_a = std::min(best_a, timedRun(a, pattern, rates, scratch));
        best_b = std::min(best_b, timedRun(b, pattern, rates, scratch));
    }
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outdir = argc > 1 ? argv[1] : ".";

    Mesh2D mesh(8, 8);
    const TrafficPattern pattern = dosPattern(mesh);
    std::vector<FlowRate> rates(pattern.flows.size());
    rates[0].flitsPerCycle = 0.2; // regulated victim
    rates[0].process = InjectionProcess::Periodic;
    rates[1].flitsPerCycle = 0.8; // aggressors at full tilt
    rates[2].flitsPerCycle = 0.8;

    // Bare reference run: same seed, no observers at all.
    RunConfig bare = dosConfig();
    bare.audit = false;
    RunResult ref;
    const double bare_s = timedRun(bare, pattern, rates, ref);

    // Audit-only (the harness default) vs audit + telemetry through
    // the observer mux: the baseline pair that isolates what
    // *telemetry* adds on top of the existing observer.
    RunConfig audited = dosConfig();
    audited.audit = true;
    RunConfig cfg = dosConfig();
    cfg.audit = true;
    cfg.telemetry.enabled = true;
    cfg.telemetry.epochCycles = 500;
    cfg.telemetry.tracePackets = true;
    RunResult audit_ref, r;
    double audit_s = 0.0, instr_s = 0.0;
    timeInterleaved(3, audited, cfg, pattern, rates, audit_ref, r,
                    audit_s, instr_s);

    if (!r.telemetry) {
        std::printf("telemetry hooks are compiled out "
                    "(-DLOFT_AUDIT=OFF); nothing to export.\n");
        return 0;
    }
    const TelemetryCollector &t = *r.telemetry;

    const bool passive =
        ref.totalFlits == r.totalFlits &&
        ref.totalPackets == r.totalPackets &&
        ref.avgPacketLatency == r.avgPacketLatency &&
        audit_ref.avgPacketLatency == r.avgPacketLatency;
    const double telemetry_overhead =
        audit_s > 0.0 ? (instr_s - audit_s) / audit_s * 100.0 : 0.0;
    const double total_overhead =
        bare_s > 0.0 ? (instr_s - bare_s) / bare_s * 100.0 : 0.0;

    const std::string trace_path = outdir + "/telemetry_trace.json";
    const std::string series_path =
        outdir + "/telemetry_timeseries.csv";
    const std::string heat_path = outdir + "/telemetry_heatmap.csv";
    if (!writeFile(trace_path, t.chromeTraceJson()) ||
        !writeFile(series_path, t.timeSeriesCsv()) ||
        !writeFile(heat_path, t.heatmapCsv()))
        return 1;

    ReportDocument doc("LOFT telemetry demo - Fig. 12 DoS scenario");

    ReportTable summary("run summary", {"metric", "value"});
    summary.addRow({std::string("victim avg latency (cycles)"),
                    r.flowAvgLatency[0]});
    summary.addRow({std::string("victim p99 latency (cycles)"),
                    r.flowP99Latency[0]});
    summary.addRow({std::string("aggressor-48 p99 latency (cycles)"),
                    r.flowP99Latency[1]});
    summary.addRow({std::string("network throughput (flits/cyc/node)"),
                    r.networkThroughput});
    summary.addRow({std::string("audit hard violations"),
                    static_cast<std::int64_t>(r.auditHardViolations)});
    summary.addRow({std::string("telemetry epochs"),
                    static_cast<std::int64_t>(t.epochs().size())});
    summary.addRow({std::string("trace events recorded"),
                    static_cast<std::int64_t>(t.traceEventsRecorded())});
    summary.addRow({std::string("trace events dropped"),
                    static_cast<std::int64_t>(t.traceEventsDropped())});
    summary.addRow({std::string("bare run (s)"), bare_s});
    summary.addRow({std::string("audit-only run (s)"), audit_s});
    summary.addRow({std::string("audit+telemetry run (s)"), instr_s});
    summary.addRow({std::string("telemetry overhead vs audit (%)"),
                    telemetry_overhead});
    summary.addRow({std::string("total observer overhead (%)"),
                    total_overhead});
    summary.addRow({std::string("instrumented == bare metrics"),
                    std::string(passive ? "yes" : "NO (BUG)")});
    doc.add(summary);

    doc.add(t.classLatencyTable());
    doc.add(t.hotLinksTable(8));

    doc.write(stdout, "text");

    std::printf("wrote %s\nwrote %s\nwrote %s\n", trace_path.c_str(),
                series_path.c_str(), heat_path.c_str());
    std::printf("open the trace at https://ui.perfetto.dev (or "
                "chrome://tracing).\n");

    if (!passive) {
        std::fprintf(stderr, "ERROR: instrumentation changed the "
                             "simulation results\n");
        return 1;
    }
    // Wall-clock budget: 10% by default, overridable for noisy
    // shared-runner environments (LOFT_TELEMETRY_OVERHEAD_LIMIT, %).
    double budget = 10.0;
    if (const char *env = std::getenv("LOFT_TELEMETRY_OVERHEAD_LIMIT"))
        budget = std::atof(env);
    if (telemetry_overhead > budget) {
        std::fprintf(stderr,
                     "ERROR: telemetry overhead %.1f%% exceeds the "
                     "%.0f%% budget\n",
                     telemetry_overhead, budget);
        return 1;
    }
    return 0;
}
