/**
 * @file
 * Denial-of-service isolation demo (Case Study I of the paper): a
 * rate-regulated victim flow shares its path to a hotspot with two
 * aggressors that inject far beyond their reservations. LOFT pins the
 * victim at its reserved rate and penalizes the aggressors; the same
 * scenario on GSF shows the victim's latency degrading instead.
 *
 * Usage: dos_isolation [aggressor_rate]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "qos/delay_bound.hh"

int
main(int argc, char **argv)
{
    using namespace noc;

    const double aggr = argc > 1 ? std::atof(argv[1]) : 0.8;

    Mesh2D mesh(8, 8);
    const TrafficPattern pattern = dosPattern(mesh);

    std::vector<FlowRate> rates(3);
    rates[0].flitsPerCycle = 0.2; // victim: regulated, below its 0.25
    rates[0].process = InjectionProcess::Periodic;
    rates[1].flitsPerCycle = aggr;
    rates[2].flitsPerCycle = aggr;

    std::printf("Case Study I: victim (node 0) at 0.2 flits/cycle, "
                "aggressors (48, 56) at %.2f; all reserve 1/4 of the "
                "link to node 63.\n\n", aggr);

    const char *names[3] = {"victim 0->63", "aggressor 48->63",
                            "aggressor 56->63"};
    for (NetKind kind : {NetKind::Loft, NetKind::Gsf}) {
        RunConfig config;
        config.kind = kind;
        config.warmupCycles = 5000;
        config.measureCycles = 10000;
        config.applyEnvScale();
        const RunResult r = runExperiment(config, pattern, rates);
        std::printf("%s:\n", kind == NetKind::Loft ? "LOFT" : "GSF");
        for (int f = 0; f < 3; ++f) {
            std::printf("  %-18s latency %8.1f cyc   throughput "
                        "%6.4f flits/cycle\n", names[f],
                        r.flowAvgLatency[f], r.flowThroughput[f]);
        }
        std::printf("  aggregate ejection-link utilization: %.0f%%\n\n",
                    100.0 * (r.flowThroughput[0] + r.flowThroughput[1] +
                             r.flowThroughput[2]));
    }

    LoftParams lp;
    std::printf("LOFT analytical worst-case latency for the victim "
                "(%u hops): %llu cycles\n", flowHops(mesh, 0, 63),
                static_cast<unsigned long long>(loftWorstCaseLatency(
                    lp, flowHops(mesh, 0, 63))));
    return 0;
}
