/**
 * @file
 * Differentiated-service demo (Fig. 10 of the paper): the mesh is
 * divided into partitions with weighted bandwidth reservations toward a
 * shared hotspot; under saturation every flow receives a throughput
 * proportional to its partition's weight, with tight variation.
 *
 * Usage: qos_partitions [w_sw w_se w_nw w_ne]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "qos/allocation.hh"
#include "qos/group_metrics.hh"

int
main(int argc, char **argv)
{
    using namespace noc;

    std::vector<double> weights{6.0, 4.0, 4.0, 2.0};
    if (argc == 5) {
        for (int i = 0; i < 4; ++i)
            weights[i] = std::atof(argv[i + 1]);
    }

    Mesh2D mesh(8, 8);
    TrafficPattern pattern = hotspotPattern(mesh, 63);
    const auto quad = quadrantPartition(mesh);
    pattern.groups.clear();
    for (const auto &f : pattern.flows)
        pattern.groups.push_back(quad[f.src]);
    pattern.groupNames = {"SW", "SE", "NW", "NE"};
    setGroupWeightedShares(pattern, mesh, weights);
    if (!validateShares(pattern.flows, mesh))
        fatal("weights oversubscribe the hotspot link");

    RunConfig config;
    config.kind = NetKind::Loft;
    config.warmupCycles = 5000;
    config.measureCycles = 10000;
    config.applyEnvScale();

    std::printf("LOFT differentiated allocation toward hotspot 63, "
                "quadrant weights %g:%g:%g:%g, saturating load\n\n",
                weights[0], weights[1], weights[2], weights[3]);
    const RunResult r = runExperiment(config, pattern, 0.5);

    std::uint32_t groups = 4;
    std::vector<std::vector<double>> samples(groups);
    for (std::size_t i = 0; i < pattern.flows.size(); ++i)
        samples[pattern.groups[i]].push_back(r.flowThroughput[i]);
    std::printf("%-6s %8s %10s %10s %10s %8s\n", "group", "weight",
                "MAX", "MIN", "AVG", "STDEV");
    for (std::uint32_t g = 0; g < groups; ++g) {
        const FairnessSummary s = summarizeFairness(samples[g]);
        std::printf("%-6s %8g %10.4f %10.4f %10.4f %7.1f%%\n",
                    pattern.groupNames[g].c_str(), weights[g], s.max,
                    s.min, s.avg, s.rsd * 100.0);
    }
    std::printf("\ntotal ejection-link utilization: %.0f%%\n",
                100.0 * r.networkThroughput * mesh.numNodes());
    return 0;
}
